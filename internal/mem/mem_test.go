package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdfm/internal/pagedata"
	"sdfm/internal/zsmalloc"
)

func newTestMemcg(pages int) *Memcg {
	return NewMemcg(Config{
		Name:     "test",
		Pages:    pages,
		Mix:      pagedata.DefaultMix,
		SeedBase: 42,
	})
}

func TestNewMemcgBasics(t *testing.T) {
	m := newTestMemcg(100)
	if m.Name() != "test" || m.NumPages() != 100 {
		t.Fatalf("name=%q pages=%d", m.Name(), m.NumPages())
	}
	if m.Resident() != 100 || m.Compressed() != 0 {
		t.Fatalf("resident=%d compressed=%d", m.Resident(), m.Compressed())
	}
	if m.ResidentBytes() != 100*PageSize {
		t.Fatalf("ResidentBytes = %d", m.ResidentBytes())
	}
	if got := m.AgeCounts(); got[0] != 100 {
		t.Fatalf("age bucket 0 holds %d pages, want 100", got[0])
	}
	if err := m.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
}

func TestNewMemcgZeroPagesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0-page memcg did not panic")
		}
	}()
	NewMemcg(Config{Name: "x", Pages: 0, Mix: pagedata.DefaultMix})
}

func TestPageSeedsAndClassesVary(t *testing.T) {
	m := newTestMemcg(1000)
	seeds := map[uint64]bool{}
	classes := map[pagedata.Class]int{}
	for id := PageID(0); int(id) < m.NumPages(); id++ {
		seeds[m.Meta(id).Seed] = true
		classes[m.Meta(id).Class]++
	}
	if len(seeds) != 1000 {
		t.Errorf("only %d distinct seeds across 1000 pages", len(seeds))
	}
	if len(classes) < 3 {
		t.Errorf("only %d classes represented: %v", len(classes), classes)
	}
}

func TestMemcgsDiffer(t *testing.T) {
	a := NewMemcg(Config{Name: "a", Pages: 10, Mix: pagedata.DefaultMix, SeedBase: 1})
	b := NewMemcg(Config{Name: "b", Pages: 10, Mix: pagedata.DefaultMix, SeedBase: 2})
	if a.Meta(0).Seed == b.Meta(0).Seed {
		t.Error("different seed bases produced identical page seeds")
	}
}

func TestTouchSetsAccessed(t *testing.T) {
	m := newTestMemcg(4)
	m.Touch(2, false)
	if !m.Flags(2).Has(FlagAccessed) {
		t.Error("accessed bit not set")
	}
	if m.Flags(2).Has(FlagDirty) {
		t.Error("read set dirty bit")
	}
}

func TestTouchWriteDirtiesAndReseedsPage(t *testing.T) {
	m := newTestMemcg(4)
	before := m.Meta(1).Seed
	m.SetFlags(1, FlagIncompressible)
	m.Touch(1, true)
	if !m.Flags(1).Has(FlagDirty) {
		t.Error("write did not set dirty")
	}
	if m.Flags(1).Has(FlagIncompressible) {
		t.Error("write did not clear incompressible mark")
	}
	if m.Meta(1).Seed == before {
		t.Error("write did not change content seed")
	}
	if err := m.VerifyIndexes(); err != nil {
		t.Error(err)
	}
}

func TestReclaimable(t *testing.T) {
	if !PageFlags(0).Reclaimable() {
		t.Error("fresh page should be reclaimable")
	}
	for _, f := range []PageFlags{FlagCompressed, FlagMlocked, FlagUnevictable, FlagIncompressible} {
		if f.Reclaimable() {
			t.Errorf("page with flag %b should not be reclaimable", f)
		}
	}
	// Accessed/dirty do not block reclaim eligibility (age gates that).
	if !(FlagAccessed | FlagDirty).Reclaimable() {
		t.Error("accessed+dirty page should remain reclaimable")
	}
}

func TestCompressPromoteCycle(t *testing.T) {
	m := newTestMemcg(10)
	m.MarkCompressed(3, zsmalloc.Handle(7), 1200)
	if m.Resident() != 9 || m.Compressed() != 1 {
		t.Fatalf("resident=%d compressed=%d", m.Resident(), m.Compressed())
	}
	if !m.Flags(3).Has(FlagCompressed) || m.Meta(3).Handle != 7 || m.Meta(3).CompressedSize != 1200 {
		t.Fatalf("page state: flags=%b meta=%+v", m.Flags(3), *m.Meta(3))
	}
	if m.CompressedBytes() != 1200 {
		t.Errorf("CompressedBytes = %d", m.CompressedBytes())
	}
	if ids := m.AppendCompressed(nil); len(ids) != 1 || ids[0] != 3 {
		t.Errorf("AppendCompressed = %v, want [3]", ids)
	}

	m.SetAge(3, 50)
	m.MarkPromoted(3)
	if m.Resident() != 10 || m.Compressed() != 0 {
		t.Fatalf("after promote: resident=%d compressed=%d", m.Resident(), m.Compressed())
	}
	if m.Flags(3).Has(FlagCompressed) || m.Age(3) != 0 || !m.Flags(3).Has(FlagAccessed) {
		t.Errorf("promoted page state: flags=%b age=%d", m.Flags(3), m.Age(3))
	}
	if m.Meta(3).Handle != zsmalloc.InvalidHandle || m.Meta(3).CompressedSize != 0 {
		t.Errorf("promoted page kept handle: %+v", *m.Meta(3))
	}
	if m.CompressedBytes() != 0 {
		t.Errorf("CompressedBytes after promote = %d", m.CompressedBytes())
	}
	if ids := m.AppendCompressed(nil); len(ids) != 0 {
		t.Errorf("AppendCompressed after promote = %v, want empty", ids)
	}
	if err := m.VerifyIndexes(); err != nil {
		t.Error(err)
	}
}

func TestDoubleCompressPanics(t *testing.T) {
	m := newTestMemcg(2)
	m.MarkCompressed(0, 1, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("double compress did not panic")
		}
	}()
	m.MarkCompressed(0, 2, 100)
}

func TestPromoteResidentPanics(t *testing.T) {
	m := newTestMemcg(2)
	defer func() {
		if recover() == nil {
			t.Fatal("promoting resident page did not panic")
		}
	}()
	m.MarkPromoted(0)
}

func TestMlockedFraction(t *testing.T) {
	m := NewMemcg(Config{
		Name: "x", Pages: 100, Mix: pagedata.DefaultMix, MlockedFraction: 0.1,
	})
	locked := 0
	for id := PageID(0); int(id) < m.NumPages(); id++ {
		if m.Flags(id).Has(FlagMlocked) {
			locked++
		}
	}
	if locked != 10 {
		t.Errorf("locked = %d, want 10", locked)
	}
	if err := m.VerifyIndexes(); err != nil {
		t.Error(err)
	}
}

func TestFlagOps(t *testing.T) {
	m := newTestMemcg(1)
	m.SetFlags(0, FlagAccessed|FlagDirty)
	if !m.Flags(0).Has(FlagAccessed) || !m.Flags(0).Has(FlagDirty) {
		t.Error("SetFlags/Has broken")
	}
	m.ClearFlags(0, FlagAccessed)
	if m.Flags(0).Has(FlagAccessed) || !m.Flags(0).Has(FlagDirty) {
		t.Error("ClearFlags broken")
	}
	if m.Flags(0).Has(FlagAccessed | FlagDirty) {
		t.Error("Has with multiple flags should require all")
	}
}

func TestScanAgesMatchesKstaledSemantics(t *testing.T) {
	m := newTestMemcg(6)
	m.Touch(0, false)              // accessed resident: records age, resets
	m.SetAge(1, 7)                 // idle resident: ages to 8
	m.SetAge(2, MaxAge)            // saturated: stays at MaxAge
	m.MarkCompressed(3, 9, 100)    // compressed: ages without accessed harvest
	m.SetAge(4, 3)                 //
	m.Touch(4, false)              // accessed at age 3: promo bucket 3
	m.SetFlags(5, FlagUnevictable) // idle, never reclaimable
	var promos [NumAges]uint64
	m.ScanAges(&promos)
	if promos[0] != 1 || promos[3] != 1 {
		t.Errorf("promotion tallies = bucket0:%d bucket3:%d, want 1 and 1", promos[0], promos[3])
	}
	wantAges := []uint8{0, 8, MaxAge, 1, 0, 1}
	for id, want := range wantAges {
		if got := m.Age(PageID(id)); got != want {
			t.Errorf("page %d age = %d, want %d", id, got, want)
		}
	}
	if m.Flags(0).Has(FlagAccessed) || m.Flags(4).Has(FlagAccessed) {
		t.Error("scan did not clear harvested accessed bits")
	}
	if err := m.VerifyIndexes(); err != nil {
		t.Error(err)
	}
}

func TestResetAges(t *testing.T) {
	m := NewMemcg(Config{
		Name: "x", Pages: 20, Mix: pagedata.DefaultMix, MlockedFraction: 0.25,
	})
	for id := PageID(0); id < 20; id++ {
		m.SetAge(id, uint8(id*7))
	}
	m.Touch(3, false)
	m.SetFlags(5, FlagIncompressible)
	m.ResetAges()
	for id := PageID(0); id < 20; id++ {
		if m.Age(id) != 0 {
			t.Fatalf("page %d age %d after reset", id, m.Age(id))
		}
		if m.Flags(id)&(FlagAccessed|FlagIncompressible) != 0 {
			t.Fatalf("page %d kept accessed/incompressible after reset", id)
		}
	}
	if !m.Flags(0).Has(FlagMlocked) {
		t.Error("reset dropped the mlocked marking")
	}
	if err := m.VerifyIndexes(); err != nil {
		t.Error(err)
	}
}

func TestAppendColdReclaimable(t *testing.T) {
	m := newTestMemcg(10)
	for id := PageID(0); id < 10; id++ {
		m.SetAge(id, uint8(id*10))
	}
	m.Touch(8, false)           // accessed: skipped by cold reclaim
	m.MarkCompressed(9, 1, 100) // already in far memory: skipped
	m.SetFlags(7, FlagMlocked)  // pinned: skipped
	got := m.AppendColdReclaimable(nil, 50)
	want := []PageID{5, 6}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("AppendColdReclaimable = %v, want %v", got, want)
	}
	if ids := m.AppendColdReclaimable(nil, 95); len(ids) != 0 {
		t.Errorf("tail above every age returned %v", ids)
	}
	if at := m.AppendReclaimableAt(nil, 80); len(at) != 1 || at[0] != 8 {
		t.Errorf("AppendReclaimableAt(80) = %v, want [8] (accessed bit must not filter)", at)
	}
}

func TestAccountingInvariantQuick(t *testing.T) {
	// Property: resident + compressed == total across arbitrary
	// compress/promote sequences.
	f := func(ops []uint8) bool {
		m := newTestMemcg(16)
		for _, op := range ops {
			id := PageID(op % 16)
			if op%2 == 0 {
				if m.Reclaimable(id) {
					m.MarkCompressed(id, zsmalloc.Handle(op)+1, 500)
				}
			} else {
				if m.Flags(id).Has(FlagCompressed) {
					m.MarkPromoted(id)
				}
			}
			if m.Resident()+m.Compressed() != m.NumPages() {
				return false
			}
			if m.Resident() < 0 || m.Compressed() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestIndexesAgreeWithRecount drives a memcg through long randomized
// sequences of every mutating operation — touches, scans, growth,
// compression, promotion, flag flips, and crash resets — and checks after
// each that the incrementally-maintained bucket indexes agree with a
// brute-force recount of the columns.
func TestIndexesAgreeWithRecount(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemcg(Config{
			Name: "prop", Pages: 64, Mix: pagedata.DefaultMix,
			SeedBase: uint64(seed), MlockedFraction: 0.1,
		})
		var promos [NumAges]uint64
		for step := 0; step < 400; step++ {
			id := PageID(rng.Intn(m.NumPages()))
			switch rng.Intn(10) {
			case 0:
				m.Grow(1 + rng.Intn(3))
			case 1, 2:
				if m.Flags(id).Has(FlagCompressed) {
					m.MarkPromoted(id)
				}
				m.Touch(id, rng.Intn(2) == 0)
			case 3:
				if m.Reclaimable(id) {
					m.MarkCompressed(id, zsmalloc.Handle(step)+1, rng.Intn(2990))
				}
			case 4:
				if m.Flags(id).Has(FlagCompressed) {
					m.MarkPromoted(id)
				}
			case 5:
				m.ScanAges(&promos)
			case 6:
				m.SetAge(id, uint8(rng.Intn(NumAges)))
			case 7:
				m.SetFlags(id, FlagIncompressible)
			case 8:
				m.ClearFlags(id, FlagIncompressible|FlagAccessed)
			case 9:
				if rng.Intn(20) == 0 {
					// Crash path: far memory evaporates, then ages reset.
					for _, cid := range m.AppendCompressed(nil) {
						m.MarkPromoted(cid)
					}
					m.ResetAges()
				}
			}
			if err := m.VerifyIndexes(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
}
