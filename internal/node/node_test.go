package node

import (
	"sort"
	"testing"
	"time"

	"sdfm/internal/core"
	"sdfm/internal/mem"
	"sdfm/internal/telemetry"
	"sdfm/internal/workload"
	"sdfm/internal/zswap"
)

const gib = uint64(1) << 30

func newMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "m0"
	}
	if cfg.Cluster == "" {
		cfg.Cluster = "test"
	}
	if cfg.DRAMBytes == 0 {
		cfg.DRAMBytes = 4 * gib
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func addWorkload(t *testing.T, m *Machine, arch *workload.Archetype, seed int64) *Job {
	t.Helper()
	w, err := workload.New(workload.Config{Archetype: arch, Name: arch.Name, Seed: seed, Start: m.Now()})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.AddJob(w)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(Config{Name: "x"}); err == nil {
		t.Error("zero DRAM accepted")
	}
	if _, err := NewMachine(Config{Name: "x", DRAMBytes: gib, Params: core.Params{K: 300}}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestProactiveCompressesColdMemory(t *testing.T) {
	m := newMachine(t, Config{
		Mode:   ModeProactive,
		Params: core.Params{K: 95, S: 10 * time.Minute},
		Seed:   1,
	})
	addWorkload(t, m, workload.LogProcessor, 1)
	addWorkload(t, m, workload.KVCache, 2)
	if err := m.Run(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.CompressedPages() == 0 {
		t.Fatal("no pages compressed after 4 h")
	}
	cov := m.Coverage()
	if cov <= 0.02 || cov > 1 {
		t.Errorf("coverage = %.3f, want meaningful (0.02, 1]", cov)
	}
	if m.ColdFraction() <= 0 {
		t.Error("no cold memory found")
	}
	if m.Evictions() != 0 {
		t.Errorf("evictions = %d with ample DRAM", m.Evictions())
	}
	// The zswap pool saves DRAM.
	if p, ok := m.Tier().(*zswap.Pool); ok {
		if p.SavedBytes() == 0 {
			t.Error("no DRAM saved")
		}
	}
}

func TestPromotionFaultPath(t *testing.T) {
	// Batch analytics with a scheduled full scan: compressed pages get
	// touched again, forcing real promotion faults.
	arch := *workload.BatchAnalytics
	arch.PagesMin, arch.PagesMax = 3000, 4000
	arch.ScanEvery = 2 * time.Hour
	m := newMachine(t, Config{
		Mode:           ModeProactive,
		Params:         core.Params{K: 90, S: 10 * time.Minute},
		CollectSamples: true,
		Seed:           2,
	})
	j := addWorkload(t, m, &arch, 3)
	if err := m.Run(5 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if j.Promotions == 0 {
		t.Fatal("no promotion faults despite periodic scans")
	}
	if j.DecompressCPU == 0 {
		t.Error("promotions charged no decompression CPU")
	}
	if len(j.LatencySamples()) == 0 {
		t.Error("no latency samples collected")
	}
	// Promotion latencies are single-digit microseconds (µs units).
	for _, l := range j.LatencySamples()[:min(5, len(j.LatencySamples()))] {
		if l < 1 || l > 30 {
			t.Errorf("promotion latency %v µs outside plausible range", l)
		}
	}
	if j.CompressionRatio() <= 1 {
		t.Errorf("compression ratio = %.2f", j.CompressionRatio())
	}
}

func TestDisabledModeCompressesNothing(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeDisabled, Seed: 3})
	addWorkload(t, m, workload.LogProcessor, 1)
	if err := m.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.CompressedPages() != 0 {
		t.Error("disabled machine compressed pages")
	}
	if m.Coverage() != 0 {
		t.Error("disabled machine reports coverage")
	}
}

func TestReactiveModeOnlyCompressesUnderPressure(t *testing.T) {
	// Plenty of DRAM: reactive mode should never compress.
	m := newMachine(t, Config{Mode: ModeReactive, DRAMBytes: 4 * gib, Seed: 4})
	addWorkload(t, m, workload.LogProcessor, 1)
	if err := m.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.CompressedPages() != 0 {
		t.Error("reactive machine compressed without pressure")
	}
	runs, stall := m.PressureEvents()
	if runs != 0 || stall != 0 {
		t.Errorf("pressure events without pressure: %d, %v", runs, stall)
	}
}

func TestReactiveModeStallsUnderPressure(t *testing.T) {
	// Size DRAM below the jobs' footprint: direct reclaim must kick in,
	// compress coldest-first, and charge synchronous stall time.
	wl, err := workload.New(workload.Config{Archetype: workload.LogProcessor, Name: "logs", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dram := uint64(wl.Pages()) * mem.PageSize * 9 / 10
	m := newMachine(t, Config{Mode: ModeReactive, DRAMBytes: dram, Seed: 5})
	j, err := m.AddJob(wl)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	runs, stall := m.PressureEvents()
	if runs == 0 {
		t.Fatal("no pressure events despite overcommit")
	}
	if stall == 0 || j.StallTime == 0 {
		t.Error("direct reclaim charged no stall time")
	}
	if j.StoredPages == 0 {
		t.Error("pressure reclaim stored nothing")
	}
	if m.UsedBytes() > dram {
		t.Errorf("machine still over DRAM: %d > %d", m.UsedBytes(), dram)
	}
}

func TestEvictionUnderExtremePressure(t *testing.T) {
	// Two jobs, DRAM far below their combined footprint, proactive mode
	// (which never does direct reclaim): the low-priority job must be
	// evicted ("fail fast", §5.1).
	wl1, _ := workload.New(workload.Config{Archetype: workload.WebFrontend, Name: "web", Seed: 6})
	wl2, _ := workload.New(workload.Config{Archetype: workload.LogProcessor, Name: "logs", Seed: 7})
	dram := uint64(wl1.Pages()+wl2.Pages()) * mem.PageSize * 7 / 10
	m := newMachine(t, Config{Mode: ModeProactive, DRAMBytes: dram, Params: core.Params{K: 98, S: time.Hour}, Seed: 6})
	j1, err := m.AddJob(wl1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.AddJob(wl2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.Evictions() == 0 {
		t.Fatal("no eviction despite extreme overcommit")
	}
	// LogProcessor has priority 50 < WebFrontend 200.
	if j2.State != JobEvicted {
		t.Error("low-priority job not the victim")
	}
	if j1.State != JobRunning {
		t.Error("high-priority job evicted")
	}
	if m.UsedBytes() > dram {
		t.Error("machine still over capacity after eviction")
	}
}

func TestPromotionRateBoundedByController(t *testing.T) {
	if raceEnabled {
		t.Skip("multi-hour sim is too slow under the race detector; shorter node tests cover these paths")
	}
	// The controller picks the smallest SLO-feasible threshold, so
	// binding workloads ride the SLO boundary: realized time-averaged
	// rates must hug the target rather than run away. With simulated jobs
	// three orders of magnitude smaller than production (tens of MB vs
	// tens of GB) the per-interval promotion budget is a handful of
	// pages, so per-interval Poisson noise is expected; the invariant is
	// on the mean and median.
	target := core.DefaultSLO.TargetRatePerMin
	for _, arch := range workload.Archetypes {
		m := newMachine(t, Config{
			Mode:           ModeProactive,
			Params:         core.Params{K: 98, S: 10 * time.Minute},
			CollectSamples: true,
			Seed:           8,
		})
		j := addWorkload(t, m, arch, 9)
		if err := m.Run(8 * time.Hour); err != nil {
			t.Fatal(err)
		}
		samples := j.RateSamples()
		if len(samples) == 0 {
			t.Fatalf("%s: no rate samples", arch.Name)
		}
		var mean float64
		for _, r := range samples {
			mean += r
		}
		mean /= float64(len(samples))
		if mean > 4*target {
			t.Errorf("%s: mean rate %.5f more than 4x target %.5f: promotions unbounded", arch.Name, mean, target)
		}
		// Once the pool has seen the workload's behaviour (including any
		// inaugural scan burst for batch jobs), the controller must have
		// converged: the second half of the run stays near the target.
		second := samples[len(samples)/2:]
		var late float64
		for _, r := range second {
			late += r
		}
		late /= float64(len(second))
		if late > 2*target {
			t.Errorf("%s: post-convergence mean rate %.5f more than 2x target %.5f", arch.Name, late, target)
		}
		var sorted []float64
		sorted = append(sorted, samples...)
		sort.Float64s(sorted)
		median := sorted[len(sorted)/2]
		if median > 2*target {
			t.Errorf("%s: median rate %.5f more than 2x target %.5f", arch.Name, median, target)
		}
	}
}

func TestSetParamsPropagates(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeProactive, Seed: 10})
	j := addWorkload(t, m, workload.KVCache, 1)
	p := core.Params{K: 80, S: 5 * time.Minute}
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if j.Controller.Params() != p || m.Params() != p {
		t.Error("params not propagated")
	}
	if err := m.SetParams(core.Params{K: -5}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTelemetryExport(t *testing.T) {
	trace := telemetry.NewTrace()
	m := newMachine(t, Config{
		Mode:      ModeProactive,
		Collector: telemetry.NewCollector(trace),
		Seed:      11,
	})
	addWorkload(t, m, workload.WebFrontend, 1)
	if err := m.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if trace.Len() == 0 {
		t.Fatal("no telemetry exported")
	}
	e := trace.Entries[0]
	if e.Key.Cluster != "test" || e.Key.Machine != "m0" {
		t.Errorf("entry key = %+v", e.Key)
	}
	if e.TotalPages == 0 {
		t.Error("entry has no pages")
	}
	// Tails must be monotone (validated on append) and cold <= total.
	if e.ColdTails[0] > e.TotalPages {
		t.Error("cold exceeds total")
	}
}

func TestCPUOverheadFractionsSmall(t *testing.T) {
	m := newMachine(t, Config{
		Mode:   ModeProactive,
		Params: core.Params{K: 95, S: 10 * time.Minute},
		Seed:   12,
	})
	j := addWorkload(t, m, workload.BigtableServer, 13)
	if err := m.Run(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	comp := j.CPUOverheadCompress()
	decomp := j.CPUOverheadDecompress()
	if comp <= 0 {
		t.Error("no compression overhead recorded")
	}
	// The paper reports per-job overheads well under 1% of job CPU.
	if comp > 0.01 {
		t.Errorf("compression overhead %.4f of CPU, want < 1%%", comp)
	}
	if decomp > 0.01 {
		t.Errorf("decompression overhead %.4f of CPU, want < 1%%", decomp)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		m := newMachine(t, Config{Mode: ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute}, Seed: 14})
		j := addWorkload(t, m, workload.KVCache, 14)
		if err := m.Run(2 * time.Hour); err != nil {
			t.Fatal(err)
		}
		return m.CompressedPages(), j.Promotions
	}
	c1, p1 := run()
	c2, p2 := run()
	if c1 != c2 || p1 != p2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", c1, p1, c2, p2)
	}
}

func TestModeString(t *testing.T) {
	if ModeProactive.String() != "proactive" || ModeReactive.String() != "reactive" ||
		ModeDisabled.String() != "disabled" || Mode(9).String() == "" {
		t.Error("Mode.String broken")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRemoveJobReleasesFarMemory(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute}, Seed: 20})
	j := addWorkload(t, m, workload.LogProcessor, 21)
	if err := m.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.CompressedPages() == 0 {
		t.Fatal("nothing compressed before removal")
	}
	used := m.UsedBytes()
	if err := m.RemoveJob(j); err != nil {
		t.Fatal(err)
	}
	if j.State != JobFinished {
		t.Errorf("state = %d", j.State)
	}
	if m.CompressedPages() != 0 {
		t.Error("far memory not released")
	}
	if m.UsedBytes() >= used {
		t.Error("usage did not drop after removal")
	}
	// Removing twice fails.
	if err := m.RemoveJob(j); err == nil {
		t.Error("double removal accepted")
	}
	// The machine keeps running fine with the job gone.
	if err := m.Run(m.Now() + 30*time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestJobChurnCycle(t *testing.T) {
	// Jobs come and go; the machine's control plane handles each
	// generation independently (the scenario the S parameter guards).
	m := newMachine(t, Config{Mode: ModeProactive, Params: core.Params{K: 95, S: 20 * time.Minute}, Seed: 22})
	for gen := 0; gen < 3; gen++ {
		j := addWorkload(t, m, workload.KVCache, int64(30+gen))
		if err := m.Run(m.Now() + 90*time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := m.RemoveJob(j); err != nil {
			t.Fatal(err)
		}
	}
	finished := 0
	for _, j := range m.Jobs() {
		if j.State == JobFinished {
			finished++
		}
	}
	if finished != 3 {
		t.Errorf("finished = %d, want 3", finished)
	}
	if m.UsedBytes() != m.Tier().FootprintBytes() {
		t.Errorf("leaked resident accounting: used=%d footprint=%d", m.UsedBytes(), m.Tier().FootprintBytes())
	}
}

func TestMemcgGrowthAndLimit(t *testing.T) {
	// A growing job reaches its memcg limit: first zswap turns off for it
	// (no cycles wasted staving off the limit), then the job is killed
	// (fail fast, §5.1).
	arch := *workload.LogProcessor
	arch.PagesMin, arch.PagesMax = 3000, 3001
	arch.GrowthPerHour = 0.60 // +60% of footprint per hour
	arch.MemLimitFactor = 1.2 // killed at +20% resident

	m := newMachine(t, Config{
		Mode: ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute}, Seed: 50,
	})
	j := addWorkload(t, m, &arch, 51)
	if j.Memcg.LimitBytes == 0 {
		t.Fatal("limit not set from archetype")
	}
	start := j.Memcg.NumPages()
	if err := m.Run(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if j.Memcg.NumPages() <= start {
		t.Fatal("job never grew")
	}
	if j.State != JobEvicted {
		t.Fatalf("job state = %d; want killed at limit", j.State)
	}
	if m.LimitKills() != 1 {
		t.Errorf("LimitKills = %d, want 1", m.LimitKills())
	}
	if m.Evictions() != 0 {
		t.Errorf("limit kill double-counted as eviction: %d", m.Evictions())
	}
}

func TestZswapOffAtLimitBeforeKill(t *testing.T) {
	// Between reaching ~the limit and being killed, no further reclaim
	// happens for the job: watch StoredPages stop growing once AtLimit.
	arch := *workload.LogProcessor
	arch.PagesMin, arch.PagesMax = 3000, 3001
	arch.GrowthPerHour = 0.10

	m := newMachine(t, Config{
		Mode: ModeProactive, Params: core.Params{K: 90, S: 10 * time.Minute}, Seed: 52,
	})
	j := addWorkload(t, m, &arch, 53)
	// Set a limit the job approaches but (during this run) does not blow
	// far past: usage must sit at the limit with zswap off.
	j.Memcg.LimitBytes = uint64(float64(j.Memcg.NumPages())*1.02) * mem.PageSize
	if err := m.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if j.State == JobRunning && j.Memcg.AtLimit() {
		// Job at limit but not past it: confirm reclaim is off now.
		before := j.StoredPages
		if err := m.Run(m.Now() + 30*time.Minute); err != nil {
			t.Fatal(err)
		}
		if j.State == JobRunning && j.StoredPages != before {
			t.Errorf("reclaim continued at memcg limit: %d -> %d", before, j.StoredPages)
		}
	}
}

func TestGrowthKeepsWorkloadMemcgInSync(t *testing.T) {
	arch := *workload.KVCache
	arch.PagesMin, arch.PagesMax = 2000, 2001
	arch.GrowthPerHour = 0.5
	m := newMachine(t, Config{Mode: ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute}, Seed: 54})
	j := addWorkload(t, m, &arch, 55)
	if err := m.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if j.Workload.Pages() != j.Memcg.NumPages() {
		t.Fatalf("workload %d pages vs memcg %d", j.Workload.Pages(), j.Memcg.NumPages())
	}
	if j.Memcg.NumPages() < 2900 {
		t.Errorf("pages = %d; expected ~+100%% over 2 h at 50%%/h", j.Memcg.NumPages())
	}
}
