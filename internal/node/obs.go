package node

import (
	"time"

	"sdfm/internal/kreclaimd"
	"sdfm/internal/kstaled"
	"sdfm/internal/obs"
	"sdfm/internal/zswap"
)

// promoLatencyBuckets are the promotion-latency histogram bounds in
// microseconds, spanning memset-speed zero-page restores through device
// reads and worst-case decompression.
var promoLatencyBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000}

// machineObs holds the machine's typed instrument handles and trace lanes.
// It is built once in NewMachine (nil when observability is off) and only
// touched by the machine's own step loop, which keeps instrumented
// parallel cluster runs byte-identical to serial ones. All updates are
// observation-only: nothing here feeds back into simulation decisions.
type machineObs struct {
	trace *obs.Tracer

	steps            *obs.Counter
	promotions       *obs.Counter
	evictions        *obs.Counter
	limitKills       *obs.Counter
	pressureRuns     *obs.Counter
	crashes          *obs.Counter
	watchdogRestarts *obs.Counter
	churnKills       *obs.Counter
	breakerTrips     *obs.Counter
	droppedExports   *obs.Counter
	auditRuns        *obs.Counter
	auditDeepRuns    *obs.Counter
	auditViolations  *obs.Counter

	residentBytes   *obs.Gauge
	usedBytes       *obs.Gauge
	compressedPages *obs.Gauge
	poolFootprint   *obs.Gauge
	jobsRunning     *obs.Gauge
	tier1Used       *obs.Gauge // device/tiered machines only; nil otherwise

	promoLatencyUS *obs.Histogram

	laneWorkload int
	laneScan     int
	laneReclaim  int
	laneCompact  int
	lanePressure int
	laneExport   int
	laneAudit    int

	// prev snapshots the machine counters whose deltas feed the counters
	// above at the end of each step.
	prev struct {
		evictions, limitKills, pressureRuns   int
		crashes, watchdogRestarts, churnKills int
		breakerTrips, droppedExports          int
	}
}

// newMachineObs registers the machine's instruments on o. Returns nil
// (instrumentation off, one branch per step) when o is nil.
func newMachineObs(o *obs.Observer) *machineObs {
	if o == nil {
		return nil
	}
	mo := &machineObs{
		trace: o.Tracer(),

		steps:            o.Counter("sdfm_node_steps_total", "Completed machine steps."),
		promotions:       o.Counter("sdfm_node_promotions_total", "Promotion faults served."),
		evictions:        o.Counter("sdfm_node_evictions_total", "Jobs evicted for memory pressure."),
		limitKills:       o.Counter("sdfm_node_limit_kills_total", "Jobs killed at their memcg limit."),
		pressureRuns:     o.Counter("sdfm_node_pressure_runs_total", "Direct-reclaim episodes."),
		crashes:          o.Counter("sdfm_node_crashes_total", "Machine crash-restarts."),
		watchdogRestarts: o.Counter("sdfm_node_watchdog_restarts_total", "Daemon restarts by the watchdog."),
		churnKills:       o.Counter("sdfm_node_churn_kills_total", "Jobs finished early by churn bursts."),
		breakerTrips:     o.Counter("sdfm_node_breaker_trips_total", "Circuit-breaker opens across jobs."),
		droppedExports:   o.Counter("sdfm_node_dropped_exports_total", "Telemetry exports lost to fault windows."),
		auditRuns:        o.Counter("sdfm_node_audit_runs_total", "Invariant-audit passes."),
		auditDeepRuns:    o.Counter("sdfm_node_audit_deep_runs_total", "Deep (full-recount) audit passes."),
		auditViolations:  o.Counter("sdfm_node_audit_violations_total", "Invariant violations found."),

		residentBytes:   o.Gauge("sdfm_node_resident_bytes", "Near memory held by running jobs."),
		usedBytes:       o.Gauge("sdfm_node_used_bytes", "Total near memory in use (resident + tier footprint)."),
		compressedPages: o.Gauge("sdfm_node_compressed_pages", "Pages currently in far memory."),
		poolFootprint:   o.Gauge("sdfm_node_pool_footprint_bytes", "DRAM consumed by the far-memory tier itself."),
		jobsRunning:     o.Gauge("sdfm_node_jobs_running", "Jobs currently running."),

		promoLatencyUS: o.Histogram("sdfm_node_promotion_latency_us",
			"End-to-end promotion-fault latency in microseconds.", promoLatencyBuckets),

		laneWorkload: o.Lane("workload"),
		laneScan:     o.Lane("scan"),
		laneReclaim:  o.Lane("reclaim"),
		laneCompact:  o.Lane("compact"),
		lanePressure: o.Lane("pressure"),
		laneExport:   o.Lane("export"),
		laneAudit:    o.Lane("audit"),
	}
	return mo
}

// attachTierMetrics hooks the far-memory tier's own instruments, labelled
// by tier, plus the tier-1 occupancy gauge for device configurations.
func (mo *machineObs) attachTierMetrics(o *obs.Observer, tier zswap.FarMemory) {
	switch tp := tier.(type) {
	case *zswap.Pool:
		tp.SetMetrics(zswap.NewMetrics(o, "zswap"))
	case *zswap.DevicePool:
		tp.SetMetrics(zswap.NewMetrics(o, "device"))
		mo.tier1Used = o.Gauge("sdfm_far_used_bytes", "Device-tier occupancy.",
			obs.Label{Key: "tier", Value: "device"})
	case *zswap.TieredPool:
		tp.SetMetrics(zswap.NewMetrics(o, "tier1"), zswap.NewMetrics(o, "tier2"))
		mo.tier1Used = o.Gauge("sdfm_far_used_bytes", "Device-tier occupancy.",
			obs.Label{Key: "tier", Value: "tier1"})
	}
}

// cpuTotals sums the per-job modelled CPU counters whose deltas bound each
// step phase's span duration. O(jobs); only called when instrumented.
type cpuTotals struct {
	workload   time.Duration // application CPU + decompression on faults
	scan       time.Duration // kstaled scanner CPU
	compress   time.Duration // compression (proactive reclaim + pressure)
	stall      time.Duration // synchronous pressure stalls
	promotions uint64
}

func (m *Machine) cpuTotals() cpuTotals {
	var t cpuTotals
	for _, j := range m.jobs {
		t.workload += j.CPUUsed + j.DecompressCPU
		t.scan += j.Tracker.CPUTime()
		t.compress += j.CompressCPU
		t.promotions += j.Promotions
	}
	t.stall = m.pressureStall
	return t
}

// endStep emits the step's phase spans (laid out sequentially over the
// scan period in simulated time, each sized by its modelled CPU cost) and
// refreshes counters and gauges. ranCompact/ranExport/ranAudit gate the
// zero-cost bookkeeping phases' spans.
func (m *Machine) obsEndStep(pre cpuTotals, ranCompact, ranExport, ranAudit, deepAudit bool, violations int) {
	mo := m.obs
	post := m.cpuTotals()
	// Trackers reset their cumulative CPU on crash; clamp deltas at zero
	// so a crash step cannot produce negative span durations.
	dur := func(a, b time.Duration) time.Duration {
		if b < a {
			return 0
		}
		return b - a
	}
	wl := dur(pre.workload, post.workload)
	scan := dur(pre.scan, post.scan)
	// The pressure phase charges both CompressCPU and StallTime; the
	// reclaim lane gets the proactive share (compress delta minus the
	// pressure stall delta, clamped).
	stall := dur(pre.stall, post.stall)
	reclaim := dur(pre.compress, post.compress)
	if reclaim >= stall {
		reclaim -= stall
	} else {
		reclaim = 0
	}

	t := m.now - m.scanPeriod
	emit := func(lane int, name string, d time.Duration) {
		mo.trace.Emit(lane, name, t, d)
		t += d
	}
	emit(mo.laneWorkload, "workload", wl)
	emit(mo.laneScan, "scan", scan)
	emit(mo.laneReclaim, "reclaim", reclaim)
	if ranCompact {
		emit(mo.laneCompact, "compact", 0)
	}
	if stall > 0 || m.pressureRuns != mo.prev.pressureRuns {
		emit(mo.lanePressure, "pressure", stall)
	}
	if ranExport {
		emit(mo.laneExport, "export", 0)
	}
	if ranAudit {
		name := "audit"
		if deepAudit {
			name = "audit-deep"
		}
		emit(mo.laneAudit, name, 0)
	}

	mo.steps.Inc()
	if d := post.promotions - pre.promotions; d > 0 {
		mo.promotions.Add(float64(d))
	}
	mo.evictions.AddInt(m.evictions - mo.prev.evictions)
	mo.limitKills.AddInt(m.limitKills - mo.prev.limitKills)
	mo.pressureRuns.AddInt(m.pressureRuns - mo.prev.pressureRuns)
	mo.crashes.AddInt(m.crashes - mo.prev.crashes)
	mo.watchdogRestarts.AddInt(m.watchdogRestarts - mo.prev.watchdogRestarts)
	mo.churnKills.AddInt(m.churnKills - mo.prev.churnKills)
	mo.breakerTrips.AddInt(m.breakerTrips - mo.prev.breakerTrips)
	mo.droppedExports.AddInt(m.droppedExports - mo.prev.droppedExports)
	if ranAudit {
		mo.auditRuns.Inc()
		if deepAudit {
			mo.auditDeepRuns.Inc()
		}
		mo.auditViolations.AddInt(violations)
	}
	mo.prev.evictions = m.evictions
	mo.prev.limitKills = m.limitKills
	mo.prev.pressureRuns = m.pressureRuns
	mo.prev.crashes = m.crashes
	mo.prev.watchdogRestarts = m.watchdogRestarts
	mo.prev.churnKills = m.churnKills
	mo.prev.breakerTrips = m.breakerTrips
	mo.prev.droppedExports = m.droppedExports

	running := 0
	for _, j := range m.jobs {
		if j.State == JobRunning {
			running++
		}
	}
	mo.jobsRunning.SetInt(running)
	mo.residentBytes.SetUint64(m.ResidentBytes())
	mo.usedBytes.SetUint64(m.UsedBytes())
	mo.compressedPages.SetUint64(m.CompressedPages())
	mo.poolFootprint.SetUint64(m.pool.FootprintBytes())
	if mo.tier1Used != nil {
		switch tp := m.auditTier().(type) {
		case *zswap.DevicePool:
			mo.tier1Used.SetUint64(tp.UsedBytes())
		case *zswap.TieredPool:
			mo.tier1Used.SetUint64(tp.Tier1().UsedBytes())
		}
	}
}

// kstaledMetrics lazily builds the machine-wide scanner metrics so crash
// restarts and AddJob share one instance.
func (m *Machine) kstaledConfig() kstaled.Config {
	return kstaled.Config{ScanPeriod: m.scanPeriod, Metrics: m.kstaledMx}
}

// attachObs finishes observability wiring after the tier stack is built.
func (m *Machine) attachObs(o *obs.Observer) {
	m.obs = newMachineObs(o)
	if m.obs == nil {
		return
	}
	m.obs.attachTierMetrics(o, m.auditTier())
	m.kstaledMx = kstaled.NewMetrics(o)
	m.reclaimer.SetMetrics(kreclaimd.NewMetrics(o))
}
