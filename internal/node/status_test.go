package node

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdfm/internal/core"
	"sdfm/internal/workload"
)

func TestSnapshot(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute}, Seed: 40})
	j := addWorkload(t, m, workload.LogProcessor, 41)
	if err := m.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Name != "m0" || s.Cluster != "test" || s.Mode != "proactive" {
		t.Errorf("identity fields: %+v", s)
	}
	if s.SimTime != 2*time.Hour {
		t.Errorf("SimTime = %v", s.SimTime)
	}
	if len(s.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(s.Jobs))
	}
	js := s.Jobs[0]
	if js.State != "running" || js.Pages != j.Memcg.NumPages() {
		t.Errorf("job snapshot: %+v", js)
	}
	if js.CompressedPages == 0 || s.Compressed == 0 {
		t.Error("snapshot missing compression state")
	}
	if s.UsedBytes == 0 || s.UsedBytes > s.DRAMBytes {
		t.Errorf("UsedBytes = %d", s.UsedBytes)
	}
	if js.Threshold <= 0 {
		t.Error("missing threshold")
	}
}

func TestStatusHandlerJSON(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute}, Seed: 42})
	addWorkload(t, m, workload.KVCache, 43)
	if err := m.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(StatusHandler(m))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Name != "m0" || len(s.Jobs) != 1 {
		t.Errorf("decoded snapshot: %+v", s)
	}
}

func TestStatusHandlerText(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute}, Seed: 44})
	addWorkload(t, m, workload.WebFrontend, 45)
	if err := m.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(StatusHandler(m))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	if !strings.Contains(body, "machine test/m0") || !strings.Contains(body, "web-frontend") {
		t.Errorf("text view:\n%s", body)
	}
}

func TestJobStateName(t *testing.T) {
	if jobStateName(JobRunning) != "running" || jobStateName(JobEvicted) != "evicted" ||
		jobStateName(JobFinished) != "finished" || jobStateName(JobState(9)) == "" {
		t.Error("jobStateName broken")
	}
}
