package node

import (
	"math"
	"testing"
	"time"

	"sdfm/internal/histogram"
	"sdfm/internal/mem"
	"sdfm/internal/workload"
)

// TestCrossFidelityAgeDistribution validates that the page-accurate
// simulator and the statistical fleet-trace generator describe the same
// fleet: after reaching steady state, the measured cold-age census of a
// simulated job must match the renewal-process prediction
// P(age >= T) = exp(-T/P) aggregated over the job's page periods — the
// exact formula internal/fleet synthesizes traces from.
func TestCrossFidelityAgeDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state run is slow")
	}
	for _, arch := range []*workload.Archetype{workload.LogProcessor, workload.KVCache, workload.WebFrontend} {
		arch := arch
		t.Run(arch.Name, func(t *testing.T) {
			w, err := workload.New(workload.Config{Archetype: arch, Name: "xv", Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(Config{
				Name: "xv", Cluster: "xv", DRAMBytes: 4 << 30,
				Mode: ModeDisabled, // pure measurement, no reclaim
				Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			j, err := m.AddJob(w)
			if err != nil {
				t.Fatal(err)
			}
			// Run long enough for ages up to a few hours to equilibrate.
			if err := m.Run(8 * time.Hour); err != nil {
				t.Fatal(err)
			}

			census := j.Tracker.Census()
			total := float64(census.Total())
			scan := histogram.DefaultScanPeriod.Seconds()

			for _, bucket := range []int{1, 5, 15, 30} {
				T := float64(bucket) * scan
				// Analytic prediction over the instance's page periods.
				var predicted float64
				for i := 0; i < w.Pages(); i++ {
					predicted += math.Exp(-T / w.MeanPeriod(mem.PageID(i)))
				}
				predicted /= float64(w.Pages())
				measured := float64(census.TailSum(bucket)) / total

				// Diurnal modulation and finite runs leave a few points of
				// slack; demand agreement within max(0.07 absolute, 25%
				// relative).
				absErr := math.Abs(measured - predicted)
				relErr := absErr / math.Max(predicted, 1e-9)
				if absErr > 0.07 && relErr > 0.25 {
					t.Errorf("bucket %d (T=%.0fs): measured cold %.3f vs analytic %.3f",
						bucket, T, measured, predicted)
				}
			}
		})
	}
}

// TestCrossFidelityWorkingSet checks the measured WSS against the
// analytic prediction Σ (1 - e^(-120/P)) used by the fleet generator.
func TestCrossFidelityWorkingSet(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state run is slow")
	}
	w, err := workload.New(workload.Config{Archetype: workload.KVCache, Name: "wss", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(Config{
		Name: "wss", Cluster: "xv", DRAMBytes: 4 << 30, Mode: ModeDisabled, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.AddJob(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	var predicted float64
	for i := 0; i < w.Pages(); i++ {
		predicted += 1 - math.Exp(-120/w.MeanPeriod(mem.PageID(i)))
	}
	measured := float64(j.Tracker.Census().Count(0))
	rel := math.Abs(measured-predicted) / predicted
	if rel > 0.3 {
		t.Errorf("WSS measured %.0f vs analytic %.0f (rel err %.2f)", measured, predicted, rel)
	}
}
