package node

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Snapshot is a machine's monitoring view: what the node agent exports to
// the cluster monitoring system (the paper's Borglet exposes the same
// kind of per-machine far-memory statistics for fleet dashboards).
type Snapshot struct {
	Name       string        `json:"name"`
	Cluster    string        `json:"cluster"`
	Mode       string        `json:"mode"`
	SimTime    time.Duration `json:"simTime"`
	ParamsK    float64       `json:"paramsK"`
	ParamsS    time.Duration `json:"paramsS"`
	DRAMBytes  uint64        `json:"dramBytes"`
	UsedBytes  uint64        `json:"usedBytes"`
	PoolBytes  uint64        `json:"poolFootprintBytes"`
	Compressed uint64        `json:"compressedPages"`
	ColdPages  uint64        `json:"coldPagesAtMin"`
	Coverage   float64       `json:"coverage"`
	Evictions  int           `json:"evictions"`
	LimitKills int           `json:"limitKills"`
	Faults     FaultStats    `json:"faults"`
	Jobs       []JobSnapshot `json:"jobs"`
}

// JobSnapshot is one job's monitoring view.
type JobSnapshot struct {
	Name              string        `json:"name"`
	State             string        `json:"state"`
	Priority          int           `json:"priority"`
	Pages             int           `json:"pages"`
	ResidentPages     int           `json:"residentPages"`
	CompressedPages   int           `json:"compressedPages"`
	WSSPages          uint64        `json:"wssPages"`
	ThresholdBucket   int           `json:"thresholdBucket"`
	Threshold         time.Duration `json:"threshold"`
	Promotions        uint64        `json:"promotions"`
	CompressionRatio  float64       `json:"compressionRatio"`
	CompressOverhead  float64       `json:"compressOverheadFrac"`
	DecompressOverhed float64       `json:"decompressOverheadFrac"`
	Breaker           string        `json:"breaker"`
	BreakerTrips      int           `json:"breakerTrips"`
}

func jobStateName(s JobState) string {
	switch s {
	case JobRunning:
		return "running"
	case JobEvicted:
		return "evicted"
	case JobFinished:
		return "finished"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Snapshot captures the machine's current state.
func (m *Machine) Snapshot() Snapshot {
	s := Snapshot{
		Name:       m.cfg.Name,
		Cluster:    m.cfg.Cluster,
		Mode:       m.cfg.Mode.String(),
		SimTime:    m.now,
		ParamsK:    m.cfg.Params.K,
		ParamsS:    m.cfg.Params.S,
		DRAMBytes:  m.cfg.DRAMBytes,
		UsedBytes:  m.UsedBytes(),
		PoolBytes:  m.pool.FootprintBytes(),
		Compressed: m.CompressedPages(),
		ColdPages:  m.ColdPagesAtMin(),
		Coverage:   m.Coverage(),
		Evictions:  m.evictions,
		LimitKills: m.limitKills,
		Faults:     m.FaultStats(),
	}
	for _, j := range m.jobs {
		s.Jobs = append(s.Jobs, JobSnapshot{
			Name:              j.Memcg.Name(),
			State:             jobStateName(j.State),
			Priority:          j.Priority,
			Pages:             j.Memcg.NumPages(),
			ResidentPages:     j.Memcg.Resident(),
			CompressedPages:   j.Memcg.Compressed(),
			WSSPages:          j.lastWSS,
			ThresholdBucket:   j.Controller.Threshold(),
			Threshold:         j.Controller.ThresholdDuration(m.scanPeriod),
			Promotions:        j.Promotions,
			CompressionRatio:  j.CompressionRatio(),
			CompressOverhead:  j.CPUOverheadCompress(),
			DecompressOverhed: j.CPUOverheadDecompress(),
			Breaker:           j.BreakerState().String(),
			BreakerTrips:      j.breakerTrips,
		})
	}
	return s
}

// StatusHandler serves the machine's snapshot over HTTP: JSON at the root
// (or with Accept: application/json), a human-readable text view at
// /text. This mirrors the node agent's monitoring export.
func StatusHandler(m *Machine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/text", func(w http.ResponseWriter, r *http.Request) {
		s := m.Snapshot()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "machine %s/%s mode=%s t=%v\n", s.Cluster, s.Name, s.Mode, s.SimTime)
		fmt.Fprintf(w, "dram %d/%d MiB used, pool %.1f MiB, coverage %.1f%%, evictions %d\n",
			s.UsedBytes>>20, s.DRAMBytes>>20, float64(s.PoolBytes)/(1<<20), s.Coverage*100, s.Evictions)
		for _, j := range s.Jobs {
			fmt.Fprintf(w, "  job %-20s %-8s prio=%-3d pages=%d compressed=%d wss=%d threshold=%v promos=%d ratio=%.2fx\n",
				j.Name, j.State, j.Priority, j.Pages, j.CompressedPages, j.WSSPages,
				j.Threshold, j.Promotions, j.CompressionRatio)
		}
	})
	return mux
}
