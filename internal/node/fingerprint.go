package node

import (
	"fmt"
	"io"
)

// WriteFingerprint writes a line-oriented rendering of everything
// observable about the machine: eviction/pressure/fault counters, pool
// statistics, and every job's cumulative accounting, memcg accounting,
// census, and promotion histograms. Two runs of the same seeded
// configuration must produce identical bytes; the cluster golden test,
// the RunParallel determinism tests, and the chaos harness's
// nondeterminism detector all hash this exact format, so its bytes are
// load-bearing — extend it only behind the golden fingerprint.
func (m *Machine) WriteFingerprint(w io.Writer) {
	fmt.Fprintf(w, "machine %s now=%d evictions=%d limitKills=%d used=%d compressed=%d coldAtMin=%d\n",
		m.Name(), m.Now(), m.Evictions(), m.LimitKills(), m.UsedBytes(), m.CompressedPages(), m.ColdPagesAtMin())
	runs, stall := m.PressureEvents()
	fmt.Fprintf(w, "pressure runs=%d stall=%d\n", runs, stall)
	fmt.Fprintf(w, "faults %+v\n", m.FaultStats())
	fmt.Fprintf(w, "pool %+v\n", m.Tier().Stats())
	for _, j := range m.Jobs() {
		fmt.Fprintf(w, "job %s state=%d prio=%d prom=%d storedPages=%d storedBytes=%d cpu=%d compress=%d decompress=%d stall=%d\n",
			j.Memcg.Name(), j.State, j.Priority, j.Promotions, j.StoredPages, j.StoredBytes,
			j.CPUUsed, j.CompressCPU, j.DecompressCPU, j.StallTime)
		fmt.Fprintf(w, "memcg pages=%d resident=%d compressed=%d compressedBytes=%d usage=%d\n",
			j.Memcg.NumPages(), j.Memcg.Resident(), j.Memcg.Compressed(), j.Memcg.CompressedBytes(), j.Memcg.UsageBytes())
		fmt.Fprintf(w, "census %v\npromotions %v\nscans %d\n",
			j.Tracker.Census().Counts(), j.Tracker.Promotions().Counts(), j.Tracker.Scans())
	}
}
