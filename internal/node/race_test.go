//go:build race

package node

// raceEnabled lets long multi-hour machine simulations skip under the race
// detector's ~15x slowdown; shorter node tests keep exercising the same
// code paths with -race.
const raceEnabled = true
