// Package node assembles one machine of the far-memory system: per-job
// memcgs driven by synthetic workloads, the kstaled scanner and kreclaimd
// reclaimer, a machine-global zswap pool, and the node agent (the paper's
// Borglet role) that runs the §4.3 threshold controller per job, enforces
// working-set soft limits, triggers zsmalloc compaction, exports
// telemetry, and evicts low-priority jobs when decompression bursts
// exhaust DRAM (§4.2, §5.2).
//
// The same machine can run in three modes for the paper's comparisons:
// proactive far memory (the paper's system), reactive far memory (stock
// zswap triggered only by memory pressure, the §3.2 baseline), and
// disabled (the control group in A/B experiments).
package node

import (
	"fmt"
	"time"

	"sdfm/internal/audit"
	"sdfm/internal/core"
	"sdfm/internal/fault"
	"sdfm/internal/histogram"
	"sdfm/internal/kreclaimd"
	"sdfm/internal/kstaled"
	"sdfm/internal/mem"
	"sdfm/internal/obs"
	"sdfm/internal/telemetry"
	"sdfm/internal/workload"
	"sdfm/internal/zswap"
)

// Mode selects the machine's far-memory policy.
type Mode int

const (
	// ModeProactive is the paper's system: background cold-page reclaim
	// under the promotion-rate SLO.
	ModeProactive Mode = iota
	// ModeReactive is stock zswap: compression happens only on direct
	// reclaim when the machine runs out of memory (§3.2 baseline).
	ModeReactive
	// ModeDisabled runs no far memory at all (A/B control group).
	ModeDisabled
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeProactive:
		return "proactive"
	case ModeReactive:
		return "reactive"
	case ModeDisabled:
		return "disabled"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// JobState tracks a job's lifecycle on the machine.
type JobState int

const (
	// JobRunning is a live job.
	JobRunning JobState = iota
	// JobEvicted was killed to relieve memory pressure and would be
	// rescheduled elsewhere by the cluster scheduler.
	JobEvicted
	// JobFinished exited normally (job churn); its far-memory pages were
	// discarded without promotion cost.
	JobFinished
)

// Job is one job instance on the machine.
type Job struct {
	Workload   *workload.Workload
	Memcg      *mem.Memcg
	Tracker    *kstaled.Tracker
	Controller *core.Controller
	Started    time.Duration
	State      JobState
	Priority   int

	// Accounting.
	CPUUsed       time.Duration // application CPU
	CompressCPU   time.Duration // cycles spent compressing (incl. rejects)
	DecompressCPU time.Duration // cycles spent decompressing on faults
	StallTime     time.Duration // synchronous stalls (reactive direct reclaim)
	Promotions    uint64        // actual promotion faults
	StoredPages   uint64        // pages moved to far memory (cumulative)
	StoredBytes   uint64        // compressed payload bytes (cumulative)

	prevPromo *histogram.Histogram // snapshot for interval deltas

	// Per-interval samples while running (for CDFs).
	rateSamples    []float64
	latencySamples []float64

	lastWSS      uint64
	lastColdMin  uint64
	intervalProm uint64 // promotion faults during the current interval

	// Circuit-breaker state (see breaker.go).
	breakerConsec   int           // consecutive SLO-violating intervals
	backoffSteps    int           // current threshold-backoff level
	breakerOpen     bool          // zswap disabled for this job
	breakerReopenAt time.Duration // when an open breaker half-opens
	breakerTrips    int           // times the breaker opened
}

// CompressionRatio returns the job's cumulative byte-weighted compression
// ratio, or 0 if nothing was stored.
func (j *Job) CompressionRatio() float64 {
	if j.StoredBytes == 0 {
		return 0
	}
	return float64(j.StoredPages*mem.PageSize) / float64(j.StoredBytes)
}

// CPUOverheadCompress returns compression cycles as a fraction of job CPU.
func (j *Job) CPUOverheadCompress() float64 {
	if j.CPUUsed == 0 {
		return 0
	}
	return float64(j.CompressCPU) / float64(j.CPUUsed)
}

// CPUOverheadDecompress returns decompression cycles as a fraction of job
// CPU.
func (j *Job) CPUOverheadDecompress() float64 {
	if j.CPUUsed == 0 {
		return 0
	}
	return float64(j.DecompressCPU) / float64(j.CPUUsed)
}

// RateSamples returns the per-interval normalized promotion rates
// (fraction of WSS per minute) observed while the job ran.
func (j *Job) RateSamples() []float64 { return j.rateSamples }

// LatencySamples returns observed promotion latencies in microseconds.
func (j *Job) LatencySamples() []float64 { return j.latencySamples }

// Config configures a machine.
type Config struct {
	Name    string
	Cluster string
	// DRAMBytes is the machine's near-memory capacity.
	DRAMBytes uint64
	Mode      Mode
	Params    core.Params
	SLO       core.SLO
	// ScanPeriod for kstaled and the agent control interval (default 120 s).
	ScanPeriod time.Duration
	// Tier overrides the far-memory tier (default: a zswap pool).
	Tier zswap.FarMemory
	// Collector, when set, receives 5-minute telemetry exports.
	Collector *telemetry.Collector
	// CompactEveryScans triggers zsmalloc compaction (default 10).
	CompactEveryScans int
	// CollectSamples retains per-interval rate and latency samples.
	CollectSamples bool
	// Seed namespaces per-job memcg content seeds.
	Seed int64
	// Injector, when set, drives deterministic fault injection: machine
	// crashes, daemon stalls, telemetry drops, pressure spikes, churn
	// bursts, and (via a fault.Tier wrapped around Tier) compressor
	// errors and slowdowns. Nil injects nothing and leaves behaviour
	// byte-identical to a machine built without one.
	Injector *fault.Injector
	// Breaker configures the per-job promotion-SLO circuit breaker;
	// disabled by default.
	Breaker BreakerConfig
	// Audit opts the machine into the invariant auditor: the catalogue in
	// internal/audit runs against live state at the end of each step (at
	// the configured cadence) and a violation fails the step with an
	// error wrapping audit.ErrViolation. Disabled by default; when
	// disabled the cost is one branch per step.
	Audit audit.Config
	// Obs, when set, attaches the machine to the observability layer:
	// metrics for every daemon plus phase spans on the machine's tracer.
	// Observation-only — simulation behaviour (and the golden fingerprint)
	// is byte-identical with or without it. Nil disables instrumentation
	// at a cost of one branch per step.
	Obs *obs.Observer
}

// Machine is one simulated production machine.
type Machine struct {
	cfg       Config
	pool      zswap.FarMemory
	zswapPool *zswap.Pool // non-nil when the tier is zswap (for compaction)
	faultTier *fault.Tier // non-nil when an injector wraps the tier
	inj       *fault.Injector
	reclaimer *kreclaimd.Reclaimer
	jobs      []*Job
	now       time.Duration
	scans     uint64

	evictions     int
	limitKills    int
	lastExport    time.Duration
	exportEvery   time.Duration
	scanPeriod    time.Duration
	pressureRuns  int
	pressureStall time.Duration

	// Fault and degradation accounting.
	crashes          int
	stalledSteps     int  // steps whose kstaled scans were wedged
	watchdogRestarts int  // daemon restarts by the agent's watchdog
	daemonWedged     bool // stall carried into the current step
	droppedExports   int  // telemetry exports suppressed by fault windows
	churnKills       int  // jobs finished early by churn bursts
	breakerTrips     int  // breaker opens across all jobs
	backoffEvents    int  // breaker backoff escalations across all jobs

	// dropIDs is the reusable compressed-set buffer for releaseFarMemory.
	dropIDs []mem.PageID

	// Invariant-audit state (see audit.go).
	auditEvery     uint64
	auditDeepEvery uint64
	auditprev      auditPrev
	// auditScratch is the reusable compressed-set buffer for tierCensus.
	auditScratch []mem.PageID

	// Observability (see obs.go); nil when Config.Obs is nil.
	obs       *machineObs
	kstaledMx *kstaled.Metrics
}

// NewMachine builds a machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.DRAMBytes == 0 {
		return nil, fmt.Errorf("node: machine %q with zero DRAM", cfg.Name)
	}
	if cfg.SLO == (core.SLO{}) {
		cfg.SLO = core.DefaultSLO
	}
	if err := cfg.SLO.Validate(); err != nil {
		return nil, err
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.ScanPeriod == 0 {
		cfg.ScanPeriod = kstaled.DefaultScanPeriod
	}
	if cfg.CompactEveryScans == 0 {
		cfg.CompactEveryScans = 10
	}
	if cfg.Breaker.Enabled {
		cfg.Breaker.fillDefaults()
	}
	tier := cfg.Tier
	if tier == nil {
		tier = zswap.NewPool()
	}
	m := &Machine{
		cfg:         cfg,
		pool:        tier,
		scanPeriod:  cfg.ScanPeriod,
		exportEvery: telemetry.DefaultAggregation,
		inj:         cfg.Injector,
		auditEvery:  cfg.Audit.Interval(),
	}
	if cfg.Audit.DeepEverySteps > 0 {
		m.auditDeepEvery = uint64(cfg.Audit.DeepEverySteps)
	}
	if zp, ok := tier.(*zswap.Pool); ok {
		m.zswapPool = zp
	}
	// Time-aware tiers (chaos test instrumentation, latency-sensitive
	// device models) learn the machine clock.
	if tn, ok := tier.(interface{ SetNow(func() time.Duration) }); ok {
		tn.SetNow(func() time.Duration { return m.now })
	}
	if cfg.Injector != nil {
		// Compressor faults are injected between the control plane and
		// the tier, so every store/load path (proactive reclaim, direct
		// reclaim, promotion faults) sees them.
		m.faultTier = fault.WrapTier(tier, cfg.Injector, func() time.Duration { return m.now })
		m.pool = m.faultTier
	}
	m.reclaimer = kreclaimd.New(m.pool)
	m.attachObs(cfg.Obs)
	return m, nil
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.cfg.Name }

// Now returns the machine's current simulated time.
func (m *Machine) Now() time.Duration { return m.now }

// Jobs returns all jobs ever placed on the machine (including evicted).
func (m *Machine) Jobs() []*Job { return m.jobs }

// Evictions returns how many jobs have been evicted for memory pressure.
func (m *Machine) Evictions() int { return m.evictions }

// LimitKills returns how many jobs were killed for exceeding their memcg
// limit (distinct from machine-pressure evictions).
func (m *Machine) LimitKills() int { return m.limitKills }

// PressureEvents returns how many direct-reclaim episodes occurred
// (reactive mode) and their cumulative synchronous stall time.
func (m *Machine) PressureEvents() (int, time.Duration) {
	return m.pressureRuns, m.pressureStall
}

// Tier returns the machine's far-memory tier.
func (m *Machine) Tier() zswap.FarMemory { return m.pool }

// AddJob places a workload on the machine starting at the machine's
// current time.
func (m *Machine) AddJob(w *workload.Workload) (*Job, error) {
	ctrl, err := core.NewController(core.ControllerConfig{
		SLO:      m.cfg.SLO,
		Params:   m.cfg.Params,
		JobStart: m.now,
	})
	if err != nil {
		return nil, err
	}
	seedBase := uint64(m.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(len(m.jobs))*0xBF58476D1CE4E5B9 + 1
	memcg := mem.NewMemcg(w.MemcgConfig(seedBase))
	if f := w.Archetype().MemLimitFactor; f > 0 {
		memcg.LimitBytes = uint64(float64(w.Pages()) * mem.PageSize * f)
	}
	j := &Job{
		Workload:   w,
		Memcg:      memcg,
		Tracker:    kstaled.NewTracker(memcg, m.kstaledConfig()),
		Controller: ctrl,
		Started:    m.now,
		Priority:   w.Archetype().Priority,
	}
	m.jobs = append(m.jobs, j)
	return j, nil
}

// SetParams deploys new control-plane parameters to every job (a
// production config push).
func (m *Machine) SetParams(p core.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.cfg.Params = p
	for _, j := range m.jobs {
		if j.State == JobRunning {
			if err := j.Controller.SetParams(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Params returns the machine's current control-plane parameters.
func (m *Machine) Params() core.Params { return m.cfg.Params }

// ResidentBytes is the near-memory consumed by running jobs' resident
// pages.
func (m *Machine) ResidentBytes() uint64 {
	var sum uint64
	for _, j := range m.jobs {
		if j.State == JobRunning {
			sum += j.Memcg.ResidentBytes()
		}
	}
	return sum
}

// UsedBytes is total near-memory in use: resident pages plus the far-
// memory tier's own footprint (compressed pool DRAM).
func (m *Machine) UsedBytes() uint64 {
	return m.ResidentBytes() + m.pool.FootprintBytes()
}

// ColdPagesAtMin returns the fleet-definition cold page count: pages idle
// at least the minimum threshold (including those already in far memory).
func (m *Machine) ColdPagesAtMin() uint64 {
	var sum uint64
	for _, j := range m.jobs {
		if j.State == JobRunning {
			sum += j.Tracker.Census().TailSum(1)
		}
	}
	return sum
}

// CompressedPages returns pages currently stored in far memory.
func (m *Machine) CompressedPages() uint64 {
	var sum uint64
	for _, j := range m.jobs {
		if j.State == JobRunning {
			sum += uint64(j.Memcg.Compressed())
		}
	}
	return sum
}

// Coverage is compressed pages over cold pages at the minimum threshold:
// the Figure 5/6 metric.
func (m *Machine) Coverage() float64 {
	cold := m.ColdPagesAtMin()
	if cold == 0 {
		return 0
	}
	return float64(m.CompressedPages()) / float64(cold)
}

// ColdFraction is cold pages over total pages: the Figure 1/2 metric.
func (m *Machine) ColdFraction() float64 {
	var total uint64
	for _, j := range m.jobs {
		if j.State == JobRunning {
			total += uint64(j.Memcg.NumPages())
		}
	}
	if total == 0 {
		return 0
	}
	return float64(m.ColdPagesAtMin()) / float64(total)
}

// Step advances the machine by one scan period: workload accesses,
// kstaled scan, agent control (threshold + reclaim), compaction,
// telemetry export, and memory-pressure handling. Injected faults are
// applied at the boundaries where their production counterparts strike:
// crashes and churn before the interval's work, daemon stalls at the
// scan, pressure spikes at the capacity check, drops at export.
func (m *Machine) Step() error {
	m.now += m.scanPeriod
	m.scans++
	intervalMinutes := m.scanPeriod.Minutes()

	// Instrumentation snapshots the cumulative CPU counters so obsEndStep
	// can size this step's phase spans from their deltas. promoHist stays
	// nil when obs is off (Observe on a nil histogram is a no-op).
	var pre cpuTotals
	var promoHist *obs.Histogram
	if m.obs != nil {
		pre = m.cpuTotals()
		promoHist = m.obs.promoLatencyUS
	}

	if m.inj.CrashDue(m.now) {
		if err := m.crash(); err != nil {
			return err
		}
	}
	if frac, ok := m.inj.ChurnBurstDue(m.now); ok {
		if err := m.churnBurst(frac); err != nil {
			return err
		}
	}

	// 1. Application allocation growth, memcg limits, then accesses;
	// faults on compressed pages promote.
	for _, j := range m.jobs {
		if j.State != JobRunning {
			continue
		}
		if n := j.Workload.GrowthDue(m.now); n > 0 {
			j.Memcg.Grow(n)
			j.Workload.AddPages(n, m.now)
		}
		if j.Memcg.LimitBytes > 0 && j.Memcg.UsageBytes() > j.Memcg.LimitBytes {
			// The job blew through its cgroup limit. WSC applications
			// prefer failing fast and restarting elsewhere over burning
			// kernel cycles staving off preemption (§5.1).
			if err := m.evict(j); err != nil {
				return err
			}
			m.limitKills++
			m.evictions-- // limit kills are not pressure evictions
			continue
		}
		var faultErr error
		j.Workload.Tick(m.now, func(id mem.PageID, write bool) {
			if faultErr != nil {
				return
			}
			if j.Memcg.Flags(id).Has(mem.FlagCompressed) {
				j.Tracker.RecordPromotionFault(j.Memcg.Age(id))
				lr, err := m.pool.Load(j.Memcg, id)
				if err != nil {
					faultErr = fmt.Errorf("node: promotion fault on %s page %d: %v: %w",
						j.Memcg.Name(), id, err, ErrPromotionFailed)
					return
				}
				j.DecompressCPU += lr.CPUTime
				j.Promotions++
				j.intervalProm++
				promoHist.Observe(float64(lr.Latency.Nanoseconds()) / 1e3)
				if m.cfg.CollectSamples {
					j.latencySamples = append(j.latencySamples, float64(lr.Latency.Nanoseconds())/1e3)
				}
			}
			j.Memcg.Touch(id, write)
		})
		if faultErr != nil {
			return faultErr
		}
		j.CPUUsed += j.Workload.CPUUsage(m.now, m.scanPeriod)
	}

	// 2. kstaled scans — unless the daemon is wedged by a stall fault, in
	// which case the agent's watchdog notices the missed scan at the end
	// of the step and restarts it (the daemon may wedge again while the
	// underlying fault persists).
	scanWedged := false
	if m.inj.StallActive(m.now) && !m.daemonWedged {
		scanWedged = true
		m.daemonWedged = true
		m.stalledSteps++
	} else if m.daemonWedged {
		// The watchdog restarted the daemon after the previous step's
		// missed scan; it runs again this step.
		m.daemonWedged = false
		m.watchdogRestarts++
	}
	if !scanWedged {
		for _, j := range m.jobs {
			if j.State == JobRunning {
				j.Tracker.Scan()
			}
		}
	}

	// 3. Node agent control loop per job.
	for _, j := range m.jobs {
		if j.State != JobRunning {
			continue
		}
		census := j.Tracker.Census()
		wss := core.WorkingSetPages(census, m.cfg.SLO)
		j.lastWSS = wss
		j.lastColdMin = census.TailSum(1)

		promoDelta := j.Tracker.Promotions().Sub(j.prevPromo)
		j.prevPromo = j.Tracker.Promotions().Clone()
		j.Controller.ObserveInterval(promoDelta, wss, intervalMinutes)

		// Record the realized normalized promotion rate for this interval.
		if m.cfg.CollectSamples && wss > 0 {
			rate := float64(j.intervalProm) / intervalMinutes / float64(wss)
			j.rateSamples = append(j.rateSamples, rate)
		}
		// The circuit breaker judges the job on its realized rate before
		// the interval counter resets.
		if m.cfg.Breaker.Enabled {
			m.updateBreaker(j, intervalMinutes)
		}
		j.intervalProm = 0

		// zswap is off for jobs at their memcg limit: compressing to stave
		// off the limit wastes cycles the scheduler will reclaim anyway by
		// killing the job (§5.1). An open breaker likewise disables zswap
		// for the job until its cooldown expires.
		if m.cfg.Mode == ModeProactive && j.Controller.Enabled(m.now) && !j.Memcg.AtLimit() && !j.breakerOpen {
			th := j.Controller.Threshold()
			if p := j.breakerPenalty(&m.cfg.Breaker); p > 0 {
				th += p
				if th > histogram.MaxBucket {
					th = histogram.MaxBucket
				}
			}
			res := m.reclaimer.ReclaimCold(j.Memcg, th)
			j.CompressCPU += res.CPUTime
			j.StoredPages += uint64(res.Stored)
			j.StoredBytes += res.StoredBytes
		}
	}

	// 4. Periodic compaction (agent-triggered, §5.1).
	ranCompact := m.zswapPool != nil && m.scans%uint64(m.cfg.CompactEveryScans) == 0
	if ranCompact {
		m.zswapPool.Compact()
	}

	// 5. Memory pressure.
	if err := m.handlePressure(); err != nil {
		return err
	}

	// 6. Telemetry export. A drop window suppresses the export but keeps
	// the cadence, leaving a gap in the trace for the model to account.
	ranExport := false
	if m.cfg.Collector != nil && m.now-m.lastExport >= m.exportEvery {
		if m.inj.TelemetryDropped(m.now) {
			m.droppedExports++
		} else if err := m.export(); err != nil {
			return err
		} else {
			ranExport = true
		}
		m.lastExport = m.now
	}

	// 7. Invariant audit (opt-in). Read-only against simulation state, so
	// behaviour with auditing on is byte-identical to auditing off.
	ranAudit, deepAudit := false, false
	if m.cfg.Audit.Enabled && m.scans%m.auditEvery == 0 {
		ranAudit = true
		deepAudit = m.auditDeepEvery > 0 && m.scans%m.auditDeepEvery == 0
		if vs := m.Audit(deepAudit); len(vs) > 0 {
			// Flush instruments before failing so the exported metrics and
			// trace describe the step that tripped the auditor.
			if m.obs != nil {
				m.obsEndStep(pre, ranCompact, ranExport, ranAudit, deepAudit, len(vs))
			}
			return &audit.Error{Violations: vs}
		}
	}
	if m.obs != nil {
		m.obsEndStep(pre, ranCompact, ranExport, ranAudit, deepAudit, 0)
	}
	return nil
}

// capacityBytes is the DRAM available to jobs right now: the machine's
// nominal capacity minus whatever a pressure-spike fault is withholding.
func (m *Machine) capacityBytes() uint64 {
	capb := m.cfg.DRAMBytes
	if extra := m.inj.PressureExtraBytes(m.now, m.cfg.DRAMBytes); extra > 0 {
		if extra >= capb {
			return 0
		}
		capb -= extra
	}
	return capb
}

// crash simulates a machine restart: the compressed pool's content is
// lost, and every running job restarts in place — resident pages refault
// cold (age 0), far-memory pages are gone without promotion cost, the
// controller loses its history, and the S-second warmup applies anew.
// Cumulative job accounting (CPU, promotions, stored bytes) survives, as
// production monitoring counters would.
func (m *Machine) crash() error {
	m.crashes++
	for _, j := range m.jobs {
		if j.State != JobRunning {
			continue
		}
		if err := m.releaseFarMemory(j); err != nil {
			return err
		}
		j.Memcg.ResetAges()
		j.Tracker = kstaled.NewTracker(j.Memcg, m.kstaledConfig())
		ctrl, err := core.NewController(core.ControllerConfig{
			SLO:      m.cfg.SLO,
			Params:   m.cfg.Params,
			JobStart: m.now,
		})
		if err != nil {
			return err
		}
		j.Controller = ctrl
		j.prevPromo = nil
		j.intervalProm = 0
		j.lastWSS = 0
		j.lastColdMin = 0
		j.breakerConsec = 0
		j.backoffSteps = 0
		j.breakerOpen = false
		// A closed breaker must carry no stale reopen deadline; the next
		// trip sets a fresh one (state-machine legality, see audit.go).
		j.breakerReopenAt = 0
		if m.cfg.Collector != nil {
			// The restarted job's cumulative promotion counters reset;
			// the collector must not see them "go backwards".
			m.cfg.Collector.Forget(m.jobKey(j))
		}
	}
	if m.zswapPool != nil {
		// The dropped pool's arena is empty now; compaction releases its
		// physical zspages, completing the restart.
		m.zswapPool.Compact()
	}
	m.daemonWedged = false
	return nil
}

// churnBurst finishes frac of the running jobs early (normal churn, not
// eviction), lowest priority first.
func (m *Machine) churnBurst(frac float64) error {
	running := m.jobsByPriority()
	n := int(frac * float64(len(running)))
	for i := 0; i < n; i++ {
		if err := m.RemoveJob(running[i]); err != nil {
			return err
		}
		m.churnKills++
	}
	return nil
}

// FaultStats aggregates a machine's fault-injection and degradation
// counters.
type FaultStats struct {
	Crashes          int    `json:"crashes"`
	StalledSteps     int    `json:"stalledSteps"`
	WatchdogRestarts int    `json:"watchdogRestarts"`
	DroppedExports   int    `json:"droppedExports"`
	ChurnKills       int    `json:"churnKills"`
	BreakerTrips     int    `json:"breakerTrips"`
	BackoffEvents    int    `json:"backoffEvents"`
	InjectedErrors   uint64 `json:"injectedErrors"` // stores failed by compressor-error windows
	SlowedStores     uint64 `json:"slowedStores"`
	SlowedLoads      uint64 `json:"slowedLoads"`
}

// FaultStats returns the machine's fault accounting. All zeros on a
// machine without an injector.
func (m *Machine) FaultStats() FaultStats {
	fs := FaultStats{
		Crashes:          m.crashes,
		StalledSteps:     m.stalledSteps,
		WatchdogRestarts: m.watchdogRestarts,
		DroppedExports:   m.droppedExports,
		ChurnKills:       m.churnKills,
		BreakerTrips:     m.breakerTrips,
		BackoffEvents:    m.backoffEvents,
	}
	if m.faultTier != nil {
		ts := m.faultTier.TierStats()
		fs.InjectedErrors = ts.InjectedErrors
		fs.SlowedStores = ts.SlowedStores
		fs.SlowedLoads = ts.SlowedLoads
	}
	return fs
}

// handlePressure resolves near-memory overcommit. In reactive mode it runs
// direct reclaim (synchronous compression charged as stall time) on the
// lowest-priority jobs, never pushing a job below its working-set soft
// limit. If pressure persists — or in proactive mode, where the paper
// prefers failing fast — the lowest-priority job is evicted.
func (m *Machine) handlePressure() error {
	capacity := m.capacityBytes()
	if m.UsedBytes() <= capacity {
		return nil
	}
	if m.cfg.Mode == ModeReactive {
		m.pressureRuns++
		// Compressed pages land in the pool's own DRAM footprint, so each
		// reclaimed page frees less than a page of near memory. Re-measure
		// the residual need each pass and keep reclaiming until the machine
		// fits or no job makes progress.
		for {
			need := uint64(0)
			if used := m.UsedBytes(); used > capacity {
				need = used - capacity
			}
			if need == 0 {
				return nil
			}
			progress := false
			for _, j := range m.jobsByPriority() {
				if need == 0 {
					break
				}
				// Soft limit: do not reclaim below the working set (§5.1).
				resident := j.Memcg.ResidentBytes()
				softLimit := j.lastWSS * mem.PageSize
				if resident <= softLimit {
					continue
				}
				budget := resident - softLimit
				if budget > need {
					budget = need
				}
				res := m.reclaimer.ReclaimUnderPressure(j.Memcg, budget)
				j.StallTime += res.CPUTime // direct reclaim stalls the allocating thread
				j.CompressCPU += res.CPUTime
				j.StoredPages += uint64(res.Stored)
				j.StoredBytes += res.StoredBytes
				m.pressureStall += res.CPUTime
				if res.Stored > 0 {
					progress = true
				}
				freed := uint64(res.Stored) * mem.PageSize
				if freed >= need {
					need = 0
				} else {
					need -= freed
				}
			}
			if !progress {
				break
			}
		}
	}
	// Evict lowest-priority jobs until the machine fits.
	for m.UsedBytes() > capacity {
		victim := m.lowestPriorityRunning()
		if victim == nil {
			return fmt.Errorf("machine %s: %w", m.cfg.Name, ErrOutOfMemory)
		}
		if err := m.evict(victim); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) jobsByPriority() []*Job {
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		if j.State == JobRunning {
			out = append(out, j)
		}
	}
	// Insertion sort by ascending priority (few jobs per machine).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Priority < out[k-1].Priority; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

func (m *Machine) lowestPriorityRunning() *Job {
	js := m.jobsByPriority()
	if len(js) == 0 {
		return nil
	}
	return js[0]
}

// JobByName finds a job by its memcg name, preferring a running instance.
// It wraps ErrJobNotFound when no such job exists.
func (m *Machine) JobByName(name string) (*Job, error) {
	var found *Job
	for _, j := range m.jobs {
		if j.Memcg.Name() != name {
			continue
		}
		if j.State == JobRunning {
			return j, nil
		}
		found = j
	}
	if found != nil {
		return found, nil
	}
	return nil, fmt.Errorf("machine %s has no job %q: %w", m.cfg.Name, name, ErrJobNotFound)
}

// RemoveJobByName retires the named running job. It wraps ErrJobNotFound
// or ErrJobNotRunning on failure.
func (m *Machine) RemoveJobByName(name string) error {
	j, err := m.JobByName(name)
	if err != nil {
		return err
	}
	return m.RemoveJob(j)
}

// RemoveJob retires a job that finished normally: its far-memory pages
// are discarded (no decompression cost) and its memory is released. The
// slot becomes free for the scheduler to reuse.
func (m *Machine) RemoveJob(j *Job) error {
	if j.State != JobRunning {
		return fmt.Errorf("removing job %s in state %s: %w", j.Memcg.Name(), jobStateName(j.State), ErrJobNotRunning)
	}
	if err := m.releaseFarMemory(j); err != nil {
		return err
	}
	j.State = JobFinished
	if m.cfg.Collector != nil {
		m.cfg.Collector.Forget(m.jobKey(j))
	}
	return nil
}

// evict kills a job, releasing its far-memory pages without decompression.
func (m *Machine) evict(j *Job) error {
	if err := m.releaseFarMemory(j); err != nil {
		return err
	}
	j.State = JobEvicted
	m.evictions++
	if m.cfg.Collector != nil {
		m.cfg.Collector.Forget(m.jobKey(j))
	}
	return nil
}

// releaseFarMemory discards a departing job's far-memory pages, visiting
// only the compressed set (ascending page order) rather than the whole
// memcg.
func (m *Machine) releaseFarMemory(j *Job) error {
	m.dropIDs = j.Memcg.AppendCompressed(m.dropIDs[:0])
	dropper, canDrop := m.pool.(interface {
		Drop(*mem.Memcg, mem.PageID) error
	})
	for _, id := range m.dropIDs {
		if canDrop {
			if err := dropper.Drop(j.Memcg, id); err != nil {
				return err
			}
		} else if _, err := m.pool.Load(j.Memcg, id); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) jobKey(j *Job) telemetry.JobKey {
	return telemetry.JobKey{Cluster: m.cfg.Cluster, Machine: m.cfg.Name, Job: j.Memcg.Name()}
}

func (m *Machine) export() error {
	minutes := m.exportEvery.Minutes()
	for _, j := range m.jobs {
		if j.State != JobRunning {
			continue
		}
		err := m.cfg.Collector.Record(
			m.jobKey(j), m.now, minutes,
			j.Tracker.Promotions(), j.Tracker.Census(), j.lastWSS,
		)
		if err != nil {
			return err
		}
	}
	return nil
}

// Run advances the machine until the given simulated time.
func (m *Machine) Run(until time.Duration) error {
	for m.now+m.scanPeriod <= until {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
