package node

import (
	"errors"
	"testing"
	"time"

	"sdfm/internal/audit"
	"sdfm/internal/core"
	"sdfm/internal/fault"
	"sdfm/internal/workload"
	"sdfm/internal/zswap"
)

// TestBreakerRetripCountedEveryTime pins the re-trip accounting
// contract: a breaker that opens, is reset by a machine restart, and
// opens again has tripped twice — per-job and machine-wide counters
// must both record every trip, never collapse the sequence into one.
// A third trip through the cooldown half-open path counts too, and the
// audit catalogue's trip-reconciliation invariant holds throughout.
func TestBreakerRetripCountedEveryTime(t *testing.T) {
	m := newMachine(t, Config{
		Mode: ModeProactive,
		Breaker: BreakerConfig{
			Enabled: true, TripViolations: 1, MaxBackoffSteps: 1, Cooldown: 10 * time.Minute,
		},
		Seed: 45,
	})
	j := addWorkload(t, m, workload.WebFrontend, 1)
	j.lastWSS = 1000
	slo := m.cfg.SLO.TargetRatePerMin
	violate := func() {
		t.Helper()
		j.lastWSS = 1000
		j.intervalProm = uint64(slo*5*1000)*10 + 100
		m.updateBreaker(j, 5)
	}
	trip := func(want int) {
		t.Helper()
		violate() // escalate to the single backoff step
		violate() // backoff exhausted: open
		if j.BreakerState() != BreakerOpen || j.BreakerTrips() != want {
			t.Fatalf("state %v, job trips %d, want open with %d trips", j.BreakerState(), j.BreakerTrips(), want)
		}
		if m.FaultStats().BreakerTrips != want {
			t.Fatalf("machine counted %d trips, job counted %d", m.FaultStats().BreakerTrips, want)
		}
	}

	trip(1)

	// A machine restart resets breaker *state* (closed, no backoff, no
	// stale reopen deadline) but must not erase trip *accounting*.
	if err := m.crash(); err != nil {
		t.Fatal(err)
	}
	if j.BreakerState() != BreakerClosed || j.breakerReopenAt != 0 {
		t.Fatalf("post-crash breaker not cleanly closed: state %v reopenAt %v", j.BreakerState(), j.breakerReopenAt)
	}
	if j.BreakerTrips() != 1 || m.FaultStats().BreakerTrips != 1 {
		t.Fatalf("crash erased trip accounting: job %d machine %d", j.BreakerTrips(), m.FaultStats().BreakerTrips)
	}
	trip(2)

	// Cooldown elapses, the breaker half-opens, and a fresh violation run
	// re-trips: three distinct openings, three counted.
	m.now += m.cfg.Breaker.Cooldown + time.Second
	j.intervalProm = 0
	m.updateBreaker(j, 5) // half-open: re-enabled with backoff retained
	if j.BreakerState() == BreakerOpen {
		t.Fatal("breaker still open past cooldown")
	}
	violate()
	if j.BreakerState() != BreakerOpen || j.BreakerTrips() != 3 || m.FaultStats().BreakerTrips != 3 {
		t.Fatalf("half-open re-trip miscounted: state %v job %d machine %d",
			j.BreakerState(), j.BreakerTrips(), m.FaultStats().BreakerTrips)
	}

	// The audit catalogue agrees at every point above; in particular the
	// per-job trips reconcile with the machine total.
	if vs := m.Audit(false); len(vs) > 0 {
		t.Fatalf("audit violations on legal breaker history: %v", vs)
	}
}

// TestAuditedRunClean: a faulted, breaker-enabled machine with per-step
// auditing and periodic deep recounts completes a run with zero
// violations.
func TestAuditedRunClean(t *testing.T) {
	duration := 90 * time.Minute
	plan := fault.DefaultPlan(46, duration)
	m := newMachine(t, Config{
		Mode:     ModeProactive,
		Params:   core.Params{K: 95, S: 5 * time.Minute},
		Seed:     46,
		Injector: fault.NewInjector(plan, "m0"),
		Breaker:  BreakerConfig{Enabled: true},
		Audit:    audit.Config{Enabled: true, DeepEverySteps: 8},
	})
	addWorkload(t, m, workload.BigtableServer, 1)
	addWorkload(t, m, workload.WebFrontend, 2)
	if err := m.Run(duration); err != nil {
		t.Fatal(err)
	}
	if vs := m.Audit(true); len(vs) > 0 {
		t.Fatalf("clean run left violations: %v", vs)
	}
}

// TestAuditStepFailsOnIllegalState: corrupting the breaker state machine
// behind the auditor's back fails the next audited step with an error
// wrapping audit.ErrViolation and naming the invariant.
func TestAuditStepFailsOnIllegalState(t *testing.T) {
	m := newMachine(t, Config{
		Mode:    ModeProactive,
		Seed:    47,
		Breaker: BreakerConfig{Enabled: true},
		Audit:   audit.Config{Enabled: true},
	})
	j := addWorkload(t, m, workload.WebFrontend, 3)
	if err := m.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Push the backoff far outside its legal envelope; the step's own
	// breaker update can decay it by at most one, so the audit at the end
	// of the step still sees an illegal state.
	j.backoffSteps = m.cfg.Breaker.MaxBackoffSteps + 5
	err := m.Step()
	if err == nil {
		t.Fatal("audited step accepted an illegal breaker state")
	}
	if !errors.Is(err, audit.ErrViolation) {
		t.Fatalf("error %v does not wrap audit.ErrViolation", err)
	}
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *audit.Error", err)
	}
	if ae.Violations[0].Invariant != audit.InvBreakerLegal {
		t.Fatalf("flagged %q, want %q", ae.Violations[0].Invariant, audit.InvBreakerLegal)
	}
}

// TestAuditCatchesCounterRegression: a cumulative counter running
// backwards — the classic restart accounting bug — trips the
// monotonicity invariant on the next audit.
func TestAuditCatchesCounterRegression(t *testing.T) {
	m := newMachine(t, Config{
		Mode:   ModeProactive,
		Params: core.Params{K: 95, S: 5 * time.Minute},
		Seed:   48,
		Audit:  audit.Config{Enabled: true},
	})
	j := addWorkload(t, m, workload.BigtableServer, 4)
	if err := m.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if j.Promotions == 0 {
		t.Fatal("no promotions after an hour; test needs a warmer setup")
	}
	j.Promotions-- // simulate a restart bug losing history
	vs := m.Audit(false)
	if len(vs) == 0 {
		t.Fatal("counter regression not flagged")
	}
	if vs[0].Invariant != audit.InvMonotonic {
		t.Fatalf("flagged %q, want %q", vs[0].Invariant, audit.InvMonotonic)
	}
}

// TestAuditedRunCleanDeviceTier: the catalogue's device checks hold over
// a full audited run on a machine whose far memory is a capacity-bounded
// hardware tier — occupancy reconciles with both cumulative stats and the
// memcg census at every step, including across fill-ups and job exits.
func TestAuditedRunCleanDeviceTier(t *testing.T) {
	profile := zswap.ProfileNVM
	profile.CapacityBytes = 24 << 20 // small enough to hit the bound
	dev := zswap.NewDevicePool(profile)
	m := newMachine(t, Config{
		Mode:   ModeProactive,
		Params: core.Params{K: 95, S: 5 * time.Minute},
		Seed:   52,
		Tier:   dev,
		Audit:  audit.Config{Enabled: true, DeepEverySteps: 4},
	})
	addWorkload(t, m, workload.BigtableServer, 1)
	addWorkload(t, m, workload.LogProcessor, 2)
	if err := m.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if dev.UsedBytes() == 0 {
		t.Fatal("device tier stored nothing; the audit saw an empty tier")
	}
	if dev.Stats().FullRejects == 0 {
		t.Fatal("device never filled; the capacity bound went untested")
	}
	if vs := m.Audit(true); len(vs) > 0 {
		t.Fatalf("clean device-tier run left violations: %v", vs)
	}
}

// TestAuditedRunCleanTieredPool: same, for the two-tier configuration —
// the census must split pages between tiers by recoverable membership and
// reconcile each tier independently.
func TestAuditedRunCleanTieredPool(t *testing.T) {
	profile := zswap.ProfileNVM
	// Split at age 5: with S=5min pages demote at age 3-4, so the mildly
	// cold land on tier-1 until its 8 MiB fill, then spill to tier-2.
	profile.CapacityBytes = 8 << 20
	tp := zswap.NewTieredPool(profile, nil, 5)
	m := newMachine(t, Config{
		Mode:   ModeProactive,
		Params: core.Params{K: 95, S: 5 * time.Minute},
		Seed:   53,
		Tier:   tp,
		Audit:  audit.Config{Enabled: true, DeepEverySteps: 4},
	})
	addWorkload(t, m, workload.BigtableServer, 3)
	addWorkload(t, m, workload.LogProcessor, 4)
	if err := m.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if tp.Tier1().UsedBytes() == 0 || tp.Tier2().FootprintBytes() == 0 {
		t.Fatalf("run left a tier empty (tier1 %d B, tier2 footprint %d B); census split untested",
			tp.Tier1().UsedBytes(), tp.Tier2().FootprintBytes())
	}
	if vs := m.Audit(true); len(vs) > 0 {
		t.Fatalf("clean tiered run left violations: %v", vs)
	}
}

// TestAuditCatchesTierCorruption: corrupting a stored page's recorded
// size on a device machine breaks membership recoverability and the
// occupancy census at once — both invariants must fire.
func TestAuditCatchesTierCorruption(t *testing.T) {
	m := newMachine(t, Config{
		Mode:   ModeProactive,
		Params: core.Params{K: 95, S: 5 * time.Minute},
		Seed:   54,
		Tier:   zswap.NewDevicePool(zswap.ProfileNVM),
		Audit:  audit.Config{Enabled: true},
	})
	j := addWorkload(t, m, workload.BigtableServer, 5)
	if err := m.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	ids := j.Memcg.AppendCompressed(nil)
	if len(ids) == 0 {
		t.Fatal("nothing stored; test needs a warmer setup")
	}
	j.Memcg.Meta(ids[0]).CompressedSize = 100
	vs := m.Audit(false)
	for _, inv := range []string{audit.InvTierMembership, audit.InvDeviceUsed} {
		found := false
		for _, v := range vs {
			if v.Invariant == inv {
				found = true
			}
		}
		if !found {
			t.Errorf("corrupted page size did not trip %s: %v", inv, vs)
		}
	}
}

// TestAuditDisabledCostsNothing: the zero-value config leaves the hook
// cold — no baseline snapshots, no violations, no step failures.
func TestAuditDisabledIsInert(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeProactive, Seed: 49})
	addWorkload(t, m, workload.WebFrontend, 5)
	if err := m.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if m.auditprev.valid {
		t.Fatal("disabled auditor advanced its baseline")
	}
}
