package node

import (
	"time"
)

// BreakerConfig configures the per-job promotion-SLO circuit breaker: the
// node agent's graceful-degradation path when a job keeps violating the
// promotion-rate SLO despite the controller's threshold choices (bursty
// phase changes, stale histograms after a daemon stall, or injected
// faults). The response escalates the way the paper's operators would:
// first back off the cold-age threshold (compress only much colder
// pages), and if violations persist, flip the job to the disabled mode of
// §5.2 for a cooldown before cautiously re-enabling.
//
// The breaker is opt-in (Enabled); a machine with the zero value behaves
// exactly as one built before the breaker existed.
type BreakerConfig struct {
	Enabled bool
	// TripViolations is how many consecutive SLO-violating control
	// intervals escalate the breaker one step (default 3).
	TripViolations int
	// BackoffBuckets is the cold-age penalty, in scan-period buckets,
	// added to the controller's threshold per backoff step (default 16,
	// ≈32 min at the 120 s scan period).
	BackoffBuckets int
	// MaxBackoffSteps is how many backoff steps are tried before the
	// breaker opens and disables zswap for the job (default 2).
	MaxBackoffSteps int
	// Cooldown is how long an open breaker keeps the job's zswap disabled
	// before re-enabling with the backoff retained (default 30 min).
	Cooldown time.Duration
}

func (c *BreakerConfig) fillDefaults() {
	if c.TripViolations == 0 {
		c.TripViolations = 3
	}
	if c.BackoffBuckets == 0 {
		c.BackoffBuckets = 16
	}
	if c.MaxBackoffSteps == 0 {
		c.MaxBackoffSteps = 2
	}
	if c.Cooldown == 0 {
		c.Cooldown = 30 * time.Minute
	}
}

// BreakerState is a job's breaker position.
type BreakerState int

const (
	// BreakerClosed is normal operation.
	BreakerClosed BreakerState = iota
	// BreakerBackoff means the threshold is being penalized.
	BreakerBackoff
	// BreakerOpen means zswap is disabled for the job until cooldown.
	BreakerOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerBackoff:
		return "backoff"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerState returns the job's current breaker position.
func (j *Job) BreakerState() BreakerState {
	switch {
	case j.breakerOpen:
		return BreakerOpen
	case j.backoffSteps > 0:
		return BreakerBackoff
	default:
		return BreakerClosed
	}
}

// BreakerTrips returns how many times the job's breaker has opened.
func (j *Job) BreakerTrips() int { return j.breakerTrips }

// updateBreaker advances one job's breaker by one control interval using
// the realized (not modelled) promotion rate.
func (m *Machine) updateBreaker(j *Job, intervalMinutes float64) {
	cfg := &m.cfg.Breaker
	if j.breakerOpen {
		if m.now >= j.breakerReopenAt {
			// Half-open: re-enable, keeping the accumulated backoff as
			// the cautious first threshold.
			j.breakerOpen = false
			j.breakerConsec = 0
		}
		return
	}
	if j.lastWSS == 0 {
		return // rate undefined without a working set
	}
	rate := float64(j.intervalProm) / intervalMinutes / float64(j.lastWSS)
	if rate <= m.cfg.SLO.TargetRatePerMin {
		j.breakerConsec = 0
		if j.backoffSteps > 0 {
			j.backoffSteps-- // recover one step per healthy interval
		}
		return
	}
	j.breakerConsec++
	if j.breakerConsec < cfg.TripViolations {
		return
	}
	j.breakerConsec = 0
	if j.backoffSteps < cfg.MaxBackoffSteps {
		j.backoffSteps++
		m.backoffEvents++
		return
	}
	// Backoff exhausted: disable zswap for the job (§5.2 disabled mode)
	// with a cooldown before the half-open retry.
	j.breakerOpen = true
	j.breakerReopenAt = m.now + cfg.Cooldown
	j.breakerTrips++
	m.breakerTrips++
}

// breakerThresholdFloor returns the extra cold-age buckets the breaker
// imposes on the job's operating threshold.
func (j *Job) breakerPenalty(cfg *BreakerConfig) int {
	return j.backoffSteps * cfg.BackoffBuckets
}
