//go:build !race

package node

const raceEnabled = false
