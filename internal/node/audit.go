package node

import (
	"time"

	"sdfm/internal/audit"
	"sdfm/internal/zswap"
)

// auditJobPrev snapshots one job's cumulative counters for the
// monotonicity invariant. Interval state (intervalProm, census
// histograms) is deliberately absent: it legitimately resets on crash.
type auditJobPrev struct {
	promotions  uint64
	storedPages uint64
	storedBytes uint64
	cpu         time.Duration
	compress    time.Duration
	decompress  time.Duration
	stall       time.Duration
	trips       int
}

// auditPrev snapshots the machine counters that must never run
// backwards, including across restarts (a crash drops pool content and
// per-job control state, never accounting).
type auditPrev struct {
	valid         bool
	evictions     int
	limitKills    int
	pressureRuns  int
	pressureStall time.Duration
	faults        FaultStats
	pool          zswap.Stats
	jobs          []auditJobPrev
}

// auditTier returns the far-memory tier at the bottom of the machine's
// tier stack, unwrapping any wrapper that exposes Inner() — the fault
// tier does, and so does chaos test instrumentation. The caller switches
// on the concrete type (plain zswap pool, device pool, or tiered pool) to
// pick the applicable conservation checks.
func (m *Machine) auditTier() zswap.FarMemory {
	t := m.pool
	for {
		w, ok := t.(interface{ Inner() zswap.FarMemory })
		if !ok {
			break
		}
		t = w.Inner()
	}
	return t
}

// auditPool returns the plain zswap pool at the bottom of the tier stack,
// nil when the machine runs a device or tiered configuration.
func (m *Machine) auditPool() *zswap.Pool {
	zp, _ := m.auditTier().(*zswap.Pool)
	return zp
}

// Audit runs the invariant catalogue against the machine's current
// state and returns every violation found. It is read-only with respect
// to simulation state (only the monotonicity baseline advances), so an
// audited run is byte-identical to an unaudited one. deep additionally
// runs the full-recount checks (memcg index recount, arena recount) at
// full-walk cost.
func (m *Machine) Audit(deep bool) []audit.Violation {
	var vs []audit.Violation
	name := m.cfg.Name

	var jobPages, jobBytes uint64
	tripSum := 0
	for _, j := range m.jobs {
		vs = append(vs, audit.CheckMemcg(name, j.Memcg)...)
		if deep {
			vs = append(vs, audit.CheckMemcgDeep(name, j.Memcg)...)
		}
		jobPages += uint64(j.Memcg.Compressed())
		jobBytes += j.Memcg.CompressedBytes()
		tripSum += j.breakerTrips
		vs = append(vs, m.auditBreaker(j)...)
	}
	if tripSum != m.breakerTrips {
		vs = append(vs, audit.V(name, "", audit.InvBreakerLegal,
			"jobs account %d breaker trips, machine counted %d", tripSum, m.breakerTrips))
	}
	switch tier := m.auditTier().(type) {
	case *zswap.Pool:
		vs = append(vs, audit.CheckPool(name, tier, jobPages, jobBytes)...)
		if deep {
			vs = append(vs, audit.CheckPoolDeep(name, tier)...)
		}
	case *zswap.DevicePool:
		// No zswap tier below: every compressed page must be device-resident.
		census, vsc := m.tierCensus(-1)
		vs = append(vs, vsc...)
		vs = append(vs, audit.CheckDevicePool(name, tier, census.DevicePages)...)
		if census.ZswapPages != 0 {
			vs = append(vs, audit.V(name, "", audit.InvTierMembership,
				"%d compressed pages with sub-page payloads on a device-only machine", census.ZswapPages))
		}
	case *zswap.TieredPool:
		census, vsc := m.tierCensus(tier.Tier2().Cutoff())
		vs = append(vs, vsc...)
		vs = append(vs, audit.CheckTieredPool(name, tier, census)...)
		if deep {
			vs = append(vs, audit.CheckPoolDeep(name, tier.Tier2())...)
		}
	}
	vs = append(vs, m.auditWatchdog()...)
	vs = append(vs, m.auditMonotonic()...)
	return vs
}

// tierCensus classifies every job's compressed pages by recoverable tier
// membership (audit.TierCensus), reusing the machine's scratch buffer.
func (m *Machine) tierCensus(cutoff int) (audit.TierPages, []audit.Violation) {
	var census audit.TierPages
	var vs []audit.Violation
	for _, j := range m.jobs {
		var c audit.TierPages
		var jv []audit.Violation
		c, m.auditScratch, jv = audit.TierCensus(m.cfg.Name, j.Memcg, cutoff, m.auditScratch)
		census.Add(c)
		vs = append(vs, jv...)
	}
	return census, vs
}

// auditBreaker checks one job's circuit-breaker state against the state
// machine's legal envelope (see breaker.go).
func (m *Machine) auditBreaker(j *Job) []audit.Violation {
	var vs []audit.Violation
	name, job := m.cfg.Name, j.Memcg.Name()
	cfg := &m.cfg.Breaker
	if !cfg.Enabled {
		if j.breakerConsec != 0 || j.backoffSteps != 0 || j.breakerOpen || j.breakerTrips != 0 {
			vs = append(vs, audit.V(name, job, audit.InvBreakerLegal,
				"breaker state (consec=%d backoff=%d open=%v trips=%d) on a machine with the breaker disabled",
				j.breakerConsec, j.backoffSteps, j.breakerOpen, j.breakerTrips))
		}
		return vs
	}
	if j.breakerConsec < 0 || j.breakerConsec >= cfg.TripViolations {
		vs = append(vs, audit.V(name, job, audit.InvBreakerLegal,
			"consecutive violations %d outside [0, %d)", j.breakerConsec, cfg.TripViolations))
	}
	if j.backoffSteps < 0 || j.backoffSteps > cfg.MaxBackoffSteps {
		vs = append(vs, audit.V(name, job, audit.InvBreakerLegal,
			"backoff steps %d outside [0, %d]", j.backoffSteps, cfg.MaxBackoffSteps))
	}
	if j.breakerOpen && j.breakerReopenAt <= 0 {
		vs = append(vs, audit.V(name, job, audit.InvBreakerLegal,
			"breaker open without a reopen deadline"))
	}
	if j.breakerTrips < 0 {
		vs = append(vs, audit.V(name, job, audit.InvBreakerLegal,
			"negative trip count %d", j.breakerTrips))
	}
	return vs
}

// auditWatchdog reconciles the stall/restart counters. Every wedge bumps
// stalledSteps; every watchdog recovery bumps watchdogRestarts; a
// machine crash can clear a wedge without a watchdog restart. Hence:
//
//	watchdogRestarts + wedged <= stalledSteps <= watchdogRestarts + crashes + wedged
func (m *Machine) auditWatchdog() []audit.Violation {
	wedged := 0
	if m.daemonWedged {
		wedged = 1
	}
	lo := m.watchdogRestarts + wedged
	hi := m.watchdogRestarts + m.crashes + wedged
	if m.stalledSteps < lo || m.stalledSteps > hi {
		return []audit.Violation{audit.V(m.cfg.Name, "", audit.InvWatchdogLegal,
			"%d stalled steps outside [%d, %d] (restarts=%d crashes=%d wedged=%v)",
			m.stalledSteps, lo, hi, m.watchdogRestarts, m.crashes, m.daemonWedged)}
	}
	return nil
}

// auditMonotonic verifies that cumulative counters never run backwards
// between audits — the telemetry-monotonicity invariant that crash
// recovery (which resets interval state but not accounting) must
// preserve. The previous snapshot advances in place; job slots are
// stable (jobs are never removed from m.jobs), so index i always names
// the same job.
func (m *Machine) auditMonotonic() []audit.Violation {
	var vs []audit.Violation
	p := &m.auditprev
	mono := func(job, counter string, prev, cur uint64) {
		if cur < prev {
			vs = append(vs, audit.V(m.cfg.Name, job, audit.InvMonotonic,
				"%s ran backwards: %d -> %d", counter, prev, cur))
		}
	}
	fs := m.FaultStats()
	ps := m.pool.Stats()
	if p.valid {
		mono("", "evictions", uint64(p.evictions), uint64(m.evictions))
		mono("", "limitKills", uint64(p.limitKills), uint64(m.limitKills))
		mono("", "pressureRuns", uint64(p.pressureRuns), uint64(m.pressureRuns))
		mono("", "pressureStall", uint64(p.pressureStall), uint64(m.pressureStall))
		mono("", "crashes", uint64(p.faults.Crashes), uint64(fs.Crashes))
		mono("", "stalledSteps", uint64(p.faults.StalledSteps), uint64(fs.StalledSteps))
		mono("", "watchdogRestarts", uint64(p.faults.WatchdogRestarts), uint64(fs.WatchdogRestarts))
		mono("", "droppedExports", uint64(p.faults.DroppedExports), uint64(fs.DroppedExports))
		mono("", "churnKills", uint64(p.faults.ChurnKills), uint64(fs.ChurnKills))
		mono("", "breakerTrips", uint64(p.faults.BreakerTrips), uint64(fs.BreakerTrips))
		mono("", "backoffEvents", uint64(p.faults.BackoffEvents), uint64(fs.BackoffEvents))
		mono("", "injectedErrors", p.faults.InjectedErrors, fs.InjectedErrors)
		mono("", "slowedStores", p.faults.SlowedStores, fs.SlowedStores)
		mono("", "slowedLoads", p.faults.SlowedLoads, fs.SlowedLoads)
		mono("", "pool.storedPages", p.pool.StoredPages, ps.StoredPages)
		mono("", "pool.zeroPages", p.pool.ZeroPages, ps.ZeroPages)
		mono("", "pool.rejectedPages", p.pool.RejectedPages, ps.RejectedPages)
		mono("", "pool.fullRejects", p.pool.FullRejects, ps.FullRejects)
		mono("", "pool.loadedPages", p.pool.LoadedPages, ps.LoadedPages)
		mono("", "pool.compressCPU", uint64(p.pool.CompressCPU), uint64(ps.CompressCPU))
		mono("", "pool.decompressCPU", uint64(p.pool.DecompressCPU), uint64(ps.DecompressCPU))
		mono("", "pool.storedBytes", p.pool.StoredBytes, ps.StoredBytes)
		mono("", "pool.payloadBytes", p.pool.PayloadBytes, ps.PayloadBytes)
		for i := range p.jobs {
			j, jp := m.jobs[i], &p.jobs[i]
			job := j.Memcg.Name()
			mono(job, "promotions", jp.promotions, j.Promotions)
			mono(job, "storedPages", jp.storedPages, j.StoredPages)
			mono(job, "storedBytes", jp.storedBytes, j.StoredBytes)
			mono(job, "cpuUsed", uint64(jp.cpu), uint64(j.CPUUsed))
			mono(job, "compressCPU", uint64(jp.compress), uint64(j.CompressCPU))
			mono(job, "decompressCPU", uint64(jp.decompress), uint64(j.DecompressCPU))
			mono(job, "stallTime", uint64(jp.stall), uint64(j.StallTime))
			mono(job, "breakerTrips", uint64(jp.trips), uint64(j.breakerTrips))
		}
	}

	p.valid = true
	p.evictions = m.evictions
	p.limitKills = m.limitKills
	p.pressureRuns = m.pressureRuns
	p.pressureStall = m.pressureStall
	p.faults = fs
	p.pool = ps
	if cap(p.jobs) < len(m.jobs) {
		grown := make([]auditJobPrev, len(m.jobs))
		copy(grown, p.jobs)
		p.jobs = grown
	}
	p.jobs = p.jobs[:len(m.jobs)]
	for i, j := range m.jobs {
		p.jobs[i] = auditJobPrev{
			promotions:  j.Promotions,
			storedPages: j.StoredPages,
			storedBytes: j.StoredBytes,
			cpu:         j.CPUUsed,
			compress:    j.CompressCPU,
			decompress:  j.DecompressCPU,
			stall:       j.StallTime,
			trips:       j.breakerTrips,
		}
	}
	return vs
}
