package node

import (
	"errors"
	"testing"
	"time"

	"sdfm/internal/core"
	"sdfm/internal/fault"
	"sdfm/internal/mem"
	"sdfm/internal/telemetry"
	"sdfm/internal/workload"
	"sdfm/internal/zswap"
)

func TestBreakerEscalatesToOpenAndRecovers(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeProactive, Breaker: BreakerConfig{Enabled: true}, Seed: 42})
	j := addWorkload(t, m, workload.WebFrontend, 1)
	cfg := &m.cfg.Breaker
	j.lastWSS = 1000

	slo := m.cfg.SLO.TargetRatePerMin
	violate := func() {
		j.intervalProm = uint64(slo*5*1000)*10 + 100 // well over the SLO rate
		m.updateBreaker(j, 5)
	}
	healthy := func() {
		j.intervalProm = 0
		m.updateBreaker(j, 5)
	}

	if j.BreakerState() != BreakerClosed {
		t.Fatalf("initial state %v", j.BreakerState())
	}
	// TripViolations consecutive violations escalate one backoff step.
	for s := 1; s <= cfg.MaxBackoffSteps; s++ {
		for i := 0; i < cfg.TripViolations; i++ {
			violate()
		}
		if j.BreakerState() != BreakerBackoff || j.backoffSteps != s {
			t.Fatalf("after %d rounds: state %v steps %d, want backoff %d", s, j.BreakerState(), j.backoffSteps, s)
		}
	}
	if got := j.breakerPenalty(cfg); got != cfg.MaxBackoffSteps*cfg.BackoffBuckets {
		t.Errorf("penalty %d buckets, want %d", got, cfg.MaxBackoffSteps*cfg.BackoffBuckets)
	}
	// Backoff exhausted: next full round opens the breaker.
	for i := 0; i < cfg.TripViolations; i++ {
		violate()
	}
	if j.BreakerState() != BreakerOpen || j.BreakerTrips() != 1 {
		t.Fatalf("state %v trips %d, want open with 1 trip", j.BreakerState(), j.BreakerTrips())
	}
	// Still open inside the cooldown, regardless of health.
	healthy()
	if j.BreakerState() != BreakerOpen {
		t.Fatal("breaker reopened before cooldown")
	}
	// Past the cooldown it half-opens, retaining the accumulated backoff.
	m.now += cfg.Cooldown + time.Second
	healthy()
	if j.BreakerState() != BreakerBackoff || j.backoffSteps == 0 {
		t.Fatalf("after cooldown: state %v steps %d, want backoff retained", j.BreakerState(), j.backoffSteps)
	}
	// Healthy intervals decay the backoff one step at a time.
	for i := 0; i < cfg.MaxBackoffSteps+1; i++ {
		healthy()
	}
	if j.BreakerState() != BreakerClosed {
		t.Errorf("backoff did not decay to closed: %v", j.BreakerState())
	}
	if m.FaultStats().BackoffEvents == 0 || m.FaultStats().BreakerTrips != 1 {
		t.Errorf("machine counters %+v", m.FaultStats())
	}
}

func TestBreakerZeroValueStaysInert(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeProactive, Seed: 43})
	if m.cfg.Breaker.Enabled || m.cfg.Breaker.TripViolations != 0 {
		t.Errorf("zero-value breaker config mutated: %+v", m.cfg.Breaker)
	}
}

func TestMachineCrashRestartsJobsInPlace(t *testing.T) {
	crashAt := 40 * time.Minute
	plan := &fault.Plan{Name: "crash", Events: []fault.Event{
		{Kind: fault.MachineCrash, Machine: "m0", At: crashAt},
	}}
	trace := telemetry.NewTrace()
	m := newMachine(t, Config{
		Mode:      ModeProactive,
		Params:    core.Params{K: 95, S: 5 * time.Minute},
		Seed:      44,
		Injector:  fault.NewInjector(plan, "m0"),
		Collector: telemetry.NewCollector(trace),
	})
	j := addWorkload(t, m, workload.BigtableServer, 2)
	if err := m.Run(crashAt - time.Minute); err != nil {
		t.Fatal(err)
	}
	if m.CompressedPages() == 0 {
		t.Fatal("nothing compressed before the crash; test needs a warmer setup")
	}
	// Run through the crash: the pool is dropped, the job restarts in
	// place, and the collector must not see promotion counters go
	// backwards (the classic post-restart telemetry bug).
	if err := m.Run(crashAt + time.Minute); err != nil {
		t.Fatal(err)
	}
	fs := m.FaultStats()
	if fs.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", fs.Crashes)
	}
	if j.State != JobRunning {
		t.Errorf("job state %s after crash, want running", jobStateName(j.State))
	}
	if got := m.CompressedPages(); got != 0 {
		t.Errorf("%d compressed pages survived the crash", got)
	}
	// The controller restarted: its warmup applies from the crash, so
	// zswap is off for the job until S elapses again.
	if j.Controller.Enabled(m.Now()) {
		t.Error("controller enabled immediately after restart despite warmup")
	}
	if err := m.Run(crashAt + 2*time.Hour); err != nil {
		t.Fatalf("post-crash run: %v", err)
	}
	if m.CompressedPages() == 0 {
		t.Error("machine never recovered compression after restart")
	}
}

func TestWatchdogRestartsStalledDaemons(t *testing.T) {
	plan := &fault.Plan{Name: "stall", Events: []fault.Event{
		{Kind: fault.DaemonStall, Machine: "m0", At: 10 * time.Minute, Duration: 20 * time.Minute},
	}}
	m := newMachine(t, Config{
		Mode:     ModeProactive,
		Params:   core.Params{K: 95, S: time.Minute},
		Seed:     45,
		Injector: fault.NewInjector(plan, "m0"),
	})
	addWorkload(t, m, workload.WebFrontend, 3)
	if err := m.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	fs := m.FaultStats()
	if fs.StalledSteps == 0 {
		t.Fatal("stall window produced no stalled steps")
	}
	if fs.WatchdogRestarts == 0 {
		t.Fatal("watchdog never restarted the wedged daemon")
	}
	// The watchdog catches each wedge on the following step, so restarts
	// track stalls and the daemon is not left wedged at the end.
	if fs.WatchdogRestarts < fs.StalledSteps-1 || fs.WatchdogRestarts > fs.StalledSteps {
		t.Errorf("restarts %d vs stalls %d: watchdog not keeping up", fs.WatchdogRestarts, fs.StalledSteps)
	}
	if m.daemonWedged {
		t.Error("daemon left wedged after the window")
	}
}

func TestChurnBurstFinishesLowestPriorityFirst(t *testing.T) {
	plan := &fault.Plan{Name: "churn", Events: []fault.Event{
		{Kind: fault.ChurnBurst, Machine: "m0", At: 30 * time.Minute, Magnitude: 0.5},
	}}
	m := newMachine(t, Config{Mode: ModeProactive, Seed: 46, Injector: fault.NewInjector(plan, "m0")})
	web := addWorkload(t, m, workload.WebFrontend, 4)   // priority 200
	logs := addWorkload(t, m, workload.LogProcessor, 5) // priority 50
	if err := m.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := m.FaultStats().ChurnKills; got != 1 {
		t.Fatalf("churn kills = %d, want 1 (half of 2 jobs)", got)
	}
	if logs.State != JobFinished {
		t.Errorf("low-priority job state %s, want finished", jobStateName(logs.State))
	}
	if web.State != JobRunning {
		t.Errorf("high-priority job state %s, want running", jobStateName(web.State))
	}
}

func TestTelemetryDropLeavesGap(t *testing.T) {
	plan := &fault.Plan{Name: "drop", Events: []fault.Event{
		{Kind: fault.TelemetryDrop, Machine: "m0", At: 20 * time.Minute, Duration: 15 * time.Minute},
	}}
	trace := telemetry.NewTrace()
	m := newMachine(t, Config{
		Mode:      ModeProactive,
		Seed:      47,
		Injector:  fault.NewInjector(plan, "m0"),
		Collector: telemetry.NewCollector(trace),
	})
	addWorkload(t, m, workload.WebFrontend, 6)
	if err := m.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.FaultStats().DroppedExports == 0 {
		t.Fatal("no exports dropped inside the drop window")
	}
	// The export cadence is preserved: entries resume on schedule after
	// the window, leaving a detectable hole rather than shifted times.
	var prev int64
	gap := false
	for _, e := range trace.Entries {
		if prev != 0 && e.TimestampSec-prev > 300 {
			gap = true
		}
		prev = e.TimestampSec
	}
	if !gap {
		t.Error("trace has no timestamp gap despite dropped exports")
	}
}

func TestHandlePressureTable(t *testing.T) {
	newJob := func(t *testing.T, m *Machine, arch *workload.Archetype, name string, pages int, seed int64) *Job {
		t.Helper()
		a := *arch
		a.PagesMin, a.PagesMax = pages, pages+1
		w, err := workload.New(workload.Config{Archetype: &a, Name: name, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		j, err := m.AddJob(w)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	const pages = 2000
	footprint := uint64(pages) * mem.PageSize

	cases := []struct {
		name string
		mode Mode
		// dramFrac sizes DRAM as a fraction of the combined footprint of
		// three jobs (bigtable 300, web 200, logs 50 priority).
		dramFrac      float64
		wantErr       error
		wantEvicted   []string // evicted job names, in eviction order
		wantSurvivors []string
	}{
		{
			name:          "fits without action",
			mode:          ModeProactive,
			dramFrac:      1.2,
			wantSurvivors: []string{"web", "bt", "logs"},
		},
		{
			name:          "proactive evicts lowest priority only",
			mode:          ModeProactive,
			dramFrac:      0.8,
			wantEvicted:   []string{"logs"},
			wantSurvivors: []string{"web", "bt"},
		},
		{
			name:          "deep overcommit evicts in priority order",
			mode:          ModeProactive,
			dramFrac:      0.5,
			wantEvicted:   []string{"logs", "web"},
			wantSurvivors: []string{"bt"},
		},
		{
			name:          "reactive reclaims before evicting",
			mode:          ModeReactive,
			dramFrac:      0.97,
			wantSurvivors: []string{"web", "bt", "logs"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dram := uint64(float64(3*footprint) * c.dramFrac)
			m := newMachine(t, Config{Mode: c.mode, DRAMBytes: dram, Params: core.Params{K: 98, S: time.Hour}, Seed: 48})
			jobs := map[string]*Job{
				"web":  newJob(t, m, workload.WebFrontend, "web", pages, 1),
				"bt":   newJob(t, m, workload.BigtableServer, "bt", pages, 2),
				"logs": newJob(t, m, workload.LogProcessor, "logs", pages, 3),
			}
			// Reactive reclaim needs working-set estimates (soft limits) to
			// know how much it may reclaim; a couple of scans provide them.
			if c.mode == ModeReactive {
				for _, j := range jobs {
					j.Tracker.Scan()
					j.lastWSS = uint64(float64(j.Memcg.NumPages()) * 0.5)
				}
			}

			err := m.handlePressure()
			if c.wantErr != nil {
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("err = %v, want %v", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			// Accounting invariant: the machine fits afterwards.
			if m.UsedBytes() > dram {
				t.Errorf("still over capacity: used %d > dram %d", m.UsedBytes(), dram)
			}
			if m.Evictions() != len(c.wantEvicted) {
				t.Errorf("evictions = %d, want %d", m.Evictions(), len(c.wantEvicted))
			}
			for _, name := range c.wantEvicted {
				if jobs[name].State != JobEvicted {
					t.Errorf("job %s state %s, want evicted", name, jobStateName(jobs[name].State))
				}
			}
			for _, name := range c.wantSurvivors {
				if jobs[name].State != JobRunning {
					t.Errorf("job %s state %s, want running", name, jobStateName(jobs[name].State))
				}
			}
			// Evicted jobs hold no far-memory pages.
			for name, j := range jobs {
				if j.State == JobEvicted && j.Memcg.Compressed() != 0 {
					t.Errorf("evicted job %s still holds %d compressed pages", name, j.Memcg.Compressed())
				}
			}
		})
	}
}

// fixedFootprintTier is a far-memory tier whose DRAM footprint cannot be
// released — the worst case for a machine under a pressure spike.
type fixedFootprintTier struct{ bytes uint64 }

func (f fixedFootprintTier) Store(*mem.Memcg, mem.PageID) zswap.StoreResult {
	return zswap.StoreResult{Outcome: zswap.StoreRejectedFull}
}
func (f fixedFootprintTier) Load(*mem.Memcg, mem.PageID) (zswap.LoadResult, error) {
	return zswap.LoadResult{}, nil
}
func (f fixedFootprintTier) FootprintBytes() uint64 { return f.bytes }
func (f fixedFootprintTier) Stats() zswap.Stats     { return zswap.Stats{} }

func TestHandlePressureOOMWrapsSentinel(t *testing.T) {
	// No running job to evict and an unreleasable tier footprint above the
	// squeezed capacity: nothing can be freed, and the error must branch
	// as ErrOutOfMemory.
	plan := &fault.Plan{Name: "squeeze", Events: []fault.Event{
		{Kind: fault.PressureSpike, Machine: "m0", At: 0, Duration: time.Hour, Magnitude: 0.999},
	}}
	m := newMachine(t, Config{
		Mode:      ModeProactive,
		DRAMBytes: gib,
		Seed:      49,
		Tier:      fixedFootprintTier{bytes: 64 << 20},
		Injector:  fault.NewInjector(plan, "m0"),
	})
	if err := m.handlePressure(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestJobLookupSentinels(t *testing.T) {
	m := newMachine(t, Config{Mode: ModeProactive, Seed: 50})
	j := addWorkload(t, m, workload.WebFrontend, 7)

	if _, err := m.JobByName("nope"); !errors.Is(err, ErrJobNotFound) {
		t.Errorf("missing job: err = %v, want ErrJobNotFound", err)
	}
	if err := m.RemoveJobByName(j.Memcg.Name()); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveJob(j); !errors.Is(err, ErrJobNotRunning) {
		t.Errorf("double remove: err = %v, want ErrJobNotRunning", err)
	}
}

func TestPressureSpikeEvictsDuringRun(t *testing.T) {
	plan := &fault.Plan{Name: "spike", Events: []fault.Event{
		{Kind: fault.PressureSpike, Machine: "m0", At: 30 * time.Minute, Duration: 10 * time.Minute, Magnitude: 0.5},
	}}
	wl1, _ := workload.New(workload.Config{Archetype: workload.WebFrontend, Name: "web", Seed: 8})
	wl2, _ := workload.New(workload.Config{Archetype: workload.LogProcessor, Name: "logs", Seed: 9})
	// DRAM fits both with headroom; the spike withholding half forces the
	// low-priority job out.
	dram := uint64(wl1.Pages()+wl2.Pages()) * mem.PageSize * 12 / 10
	m := newMachine(t, Config{Mode: ModeProactive, DRAMBytes: dram, Seed: 51, Injector: fault.NewInjector(plan, "m0")})
	web, err := m.AddJob(wl1)
	if err != nil {
		t.Fatal(err)
	}
	logs, err := m.AddJob(wl2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.Evictions() == 0 {
		t.Fatal("pressure spike evicted nothing")
	}
	if logs.State != JobEvicted {
		t.Errorf("low-priority job state %s, want evicted", jobStateName(logs.State))
	}
	if web.State == JobEvicted && logs.State != JobEvicted {
		t.Error("high-priority job evicted before low-priority")
	}
}
