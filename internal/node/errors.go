package node

import "errors"

// Sentinel errors callers can branch on with errors.Is. Wrapped errors
// carry machine/job context via %w.
var (
	// ErrOutOfMemory means a machine is over capacity with no evictable
	// job left to free memory.
	ErrOutOfMemory = errors.New("node: out of memory with no evictable jobs")
	// ErrJobNotFound means no job with the given name exists on the
	// machine.
	ErrJobNotFound = errors.New("node: job not found")
	// ErrJobNotRunning means the operation requires a running job but the
	// target has already finished or been evicted.
	ErrJobNotRunning = errors.New("node: job not running")
	// ErrPromotionFailed means a promotion fault could not be served by
	// the far-memory tier.
	ErrPromotionFailed = errors.New("node: promotion failed")
)
