package cluster

import (
	"strings"
	"testing"
	"time"

	"sdfm/internal/audit"
	"sdfm/internal/core"
	"sdfm/internal/fault"
	"sdfm/internal/mem"
	"sdfm/internal/node"
	"sdfm/internal/workload"
)

const gib = uint64(1) << 30

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "test"
	}
	if cfg.Machines == 0 {
		cfg.Machines = 4
	}
	if cfg.DRAMPerMachine == 0 {
		cfg.DRAMPerMachine = gib
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Name: "x", Machines: 0, DRAMPerMachine: gib}); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := New(Config{Name: "x", Machines: 1}); err == nil {
		t.Error("zero DRAM accepted")
	}
}

func TestScheduleLeastLoaded(t *testing.T) {
	c := newCluster(t, Config{Machines: 3})
	var placed []*node.Machine
	for i := 0; i < 3; i++ {
		w, err := workload.New(workload.Config{
			Archetype: workload.WebFrontend, Name: "w", Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		m, j, err := c.Schedule(w)
		if err != nil {
			t.Fatal(err)
		}
		if j == nil {
			t.Fatal("nil job")
		}
		placed = append(placed, m)
	}
	// Three similar jobs must spread across three machines.
	seen := map[string]bool{}
	for _, m := range placed {
		seen[m.Name()] = true
	}
	if len(seen) != 3 {
		t.Errorf("jobs spread over %d machines, want 3", len(seen))
	}
	if c.JobCount() != 3 {
		t.Errorf("JobCount = %d", c.JobCount())
	}
}

func TestScheduleRejectsWhenFull(t *testing.T) {
	// Machines sized to fit a single small workload each.
	c := newCluster(t, Config{Machines: 2, DRAMPerMachine: 6000 * mem.PageSize * 12 / 10})
	for i := 0; ; i++ {
		w, err := workload.New(workload.Config{
			Archetype: workload.WebFrontend, Name: "w", Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Schedule(w); err != nil {
			if i < 2 {
				t.Fatalf("rejected after only %d placements", i)
			}
			return // eventually full: expected
		}
		if i > 20 {
			t.Fatal("never filled up")
		}
	}
}

func TestPopulateAndRun(t *testing.T) {
	c := newCluster(t, Config{
		Machines:       3,
		DRAMPerMachine: 2 * gib,
		Mode:           node.ModeProactive,
		Params:         core.Params{K: 95, S: 10 * time.Minute},
		Seed:           1,
	})
	if err := c.Populate(6, nil, 42); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if c.Evictions() != 0 {
		t.Errorf("evictions = %d with generous DRAM", c.Evictions())
	}
	if c.EvictionSLO() != 0 {
		t.Errorf("eviction SLO = %v", c.EvictionSLO())
	}
	cov := c.CoverageSummary()
	if cov.N == 0 {
		t.Fatal("no machines with cold memory")
	}
	if cov.Mean <= 0 {
		t.Error("no coverage after 2 h proactive run")
	}
	cf := c.ColdFractionSummary()
	if cf.Mean <= 0 || cf.Mean >= 1 {
		t.Errorf("cold fraction mean = %v", cf.Mean)
	}
}

func TestABGroups(t *testing.T) {
	c := newCluster(t, Config{
		Machines:       4,
		DRAMPerMachine: 2 * gib,
		ModeFn: func(i int) node.Mode {
			if i%2 == 0 {
				return node.ModeProactive
			}
			return node.ModeDisabled
		},
		Params: core.Params{K: 95, S: 10 * time.Minute},
		Seed:   2,
	})
	exp := c.Group(node.ModeProactive)
	ctl := c.Group(node.ModeDisabled)
	if len(exp) != 2 || len(ctl) != 2 {
		t.Fatalf("groups = %d/%d, want 2/2", len(exp), len(ctl))
	}
	// Populate each machine directly so both groups get similar load.
	for i, m := range c.Machines() {
		w, err := workload.New(workload.Config{
			Archetype: workload.BigtableServer, Name: "bt", Seed: int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.AddJob(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, m := range exp {
		if m.CompressedPages() == 0 {
			t.Errorf("experiment machine %s compressed nothing", m.Name())
		}
	}
	for _, m := range ctl {
		if m.CompressedPages() != 0 {
			t.Errorf("control machine %s compressed pages", m.Name())
		}
	}
}

func TestStepAdvancesAllMachines(t *testing.T) {
	c := newCluster(t, Config{Machines: 2, Seed: 3})
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Machines() {
		if m.Now() == 0 {
			t.Error("machine not stepped")
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	build := func() *Cluster {
		c := newCluster(t, Config{
			Machines: 3, DRAMPerMachine: 2 * gib,
			Mode: node.ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute},
			Seed: 60,
		})
		if err := c.Populate(6, nil, 61); err != nil {
			t.Fatal(err)
		}
		return c
	}
	seq := build()
	if err := seq.Run(90 * time.Minute); err != nil {
		t.Fatal(err)
	}
	par := build()
	if err := par.RunParallel(90*time.Minute, 4); err != nil {
		t.Fatal(err)
	}
	// Machines are independent given their seeds, so the parallel schedule
	// must reproduce the sequential run's state exactly — not just summary
	// counters but every job's accounting, census, and pool statistics.
	for i := range seq.Machines() {
		a, b := seq.Machines()[i], par.Machines()[i]
		fa, fb := machineFingerprint(a), machineFingerprint(b)
		if fa != fb {
			t.Fatalf("machine %d state diverges between Run and RunParallel:\nseq:\n%s\npar:\n%s", i, fa, fb)
		}
	}
}

// machineFingerprint renders everything observable about a machine's
// state — the same fields the golden-equivalence hash covers — so tests
// can assert two runs are byte-identical with a readable diff.
func machineFingerprint(m *node.Machine) string {
	var sb strings.Builder
	m.WriteFingerprint(&sb)
	return sb.String()
}

// TestRunParallelAuditedMatchesSequential is the concurrent-audit
// determinism guarantee: with the invariant auditor enabled on every
// machine and a fault plan active, RunParallel must still produce
// byte-identical state to the serial run — the auditor reads state and
// advances only its own per-machine baseline, so worker scheduling
// cannot leak into the simulation.
func TestRunParallelAuditedMatchesSequential(t *testing.T) {
	duration := 2 * time.Hour
	build := func() *Cluster {
		c := newCluster(t, Config{
			Machines: 3, DRAMPerMachine: 2 * gib,
			Mode: node.ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute},
			Seed:    60,
			Faults:  fault.DefaultPlan(60, duration),
			Breaker: node.BreakerConfig{Enabled: true},
			Audit:   audit.Config{Enabled: true, DeepEverySteps: 16},
		})
		if err := c.Populate(6, nil, 61); err != nil {
			t.Fatal(err)
		}
		return c
	}
	seq := build()
	if err := seq.Run(duration); err != nil {
		t.Fatal(err)
	}
	par := build()
	if err := par.RunParallel(duration, 4); err != nil {
		t.Fatal(err)
	}
	for i := range seq.Machines() {
		a, b := seq.Machines()[i], par.Machines()[i]
		fa, fb := machineFingerprint(a), machineFingerprint(b)
		if fa != fb {
			t.Fatalf("machine %d state diverges between audited Run and RunParallel:\nseq:\n%s\npar:\n%s", i, fa, fb)
		}
	}
	if seq.Fingerprint() != par.Fingerprint() {
		t.Fatalf("cluster fingerprints diverge: %016x vs %016x", seq.Fingerprint(), par.Fingerprint())
	}
	if vs := par.Audit(true); len(vs) > 0 {
		t.Fatalf("shipped tree violates invariants under the default plan: %v", vs)
	}
}
