package cluster

import (
	"bytes"
	"testing"
	"time"

	"sdfm/internal/core"
	"sdfm/internal/fault"
	"sdfm/internal/node"
	"sdfm/internal/telemetry"
)

// runTrace builds a small cluster, optionally with a fault plan, drives it
// serially (the collector is not concurrent-safe), and returns the
// telemetry trace serialized to gob bytes.
func runTrace(t *testing.T, seed int64, plan *fault.Plan) []byte {
	t.Helper()
	trace := telemetry.NewTrace()
	c, err := New(Config{
		Name:           "det",
		Machines:       3,
		DRAMPerMachine: 256 << 20,
		Mode:           node.ModeProactive,
		Params:         core.DefaultParams,
		SLO:            core.DefaultSLO,
		Seed:           seed,
		Collector:      telemetry.NewCollector(trace),
		Faults:         plan,
		Breaker:        node.BreakerConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Populate(6, nil, seed); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultedRunsAreDeterministic is the determinism guard: two runs with
// the same seed and the same active fault plan must emit byte-identical
// telemetry.
func TestFaultedRunsAreDeterministic(t *testing.T) {
	if raceEnabled {
		t.Skip("serial byte-determinism sims are too slow under the race detector")
	}
	plan := fault.DefaultPlan(7, 2*time.Hour)
	a := runTrace(t, 7, plan)
	b := runTrace(t, 7, plan)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed faulted runs diverged: %d vs %d bytes", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("faulted run produced no telemetry")
	}
}

// TestEmptyPlanMatchesNoPlan checks that wiring in an empty fault plan is
// a no-op: the run must stay byte-identical to one built without a plan.
func TestEmptyPlanMatchesNoPlan(t *testing.T) {
	if raceEnabled {
		t.Skip("serial byte-determinism sims are too slow under the race detector")
	}
	none := runTrace(t, 11, nil)
	empty := runTrace(t, 11, &fault.Plan{Name: "empty"})
	if !bytes.Equal(none, empty) {
		t.Fatal("empty fault plan perturbed the simulation")
	}
	if len(none) == 0 {
		t.Fatal("run produced no telemetry")
	}
}

// TestFaultPlanActuallyPerturbs guards against the injector silently never
// firing: the default plan must change the run relative to fault-free.
func TestFaultPlanActuallyPerturbs(t *testing.T) {
	if raceEnabled {
		t.Skip("serial byte-determinism sims are too slow under the race detector")
	}
	clean := runTrace(t, 7, nil)
	faulted := runTrace(t, 7, fault.DefaultPlan(7, 2*time.Hour))
	if bytes.Equal(clean, faulted) {
		t.Fatal("default fault plan left telemetry byte-identical to fault-free run")
	}
}
