package cluster

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdfm/internal/audit"
	"sdfm/internal/core"
	"sdfm/internal/fault"
	"sdfm/internal/node"
	"sdfm/internal/obs"
	"sdfm/internal/telemetry"
)

// goldenFingerprint runs a seeded 20-machine cluster — proactive, reactive
// and disabled machines, an active fault plan (crashes, churn, stalls,
// pressure spikes, compressor faults), breakers, and a telemetry collector
// — and reduces everything observable about the run to one FNV-64a hash:
// the full telemetry trace bytes, every machine's eviction/pressure/fault
// counters and pool statistics, and every job's cumulative accounting,
// census, and promotion histograms.
//
// The checked-in golden value was produced by the pre-SoA walk-based
// simulator; the refactored simulator must reproduce it bit for bit
// (same RNG draw order, same counters, same arena operation order).
// auditCfg lets the audited variant prove the invariant auditor is
// observation-only: the hash must not move when it is enabled. hub does
// the same for the metrics/tracing layer — instrumented runs must
// reproduce the same hash (nil disables instrumentation).
func goldenFingerprint(t *testing.T, auditCfg audit.Config, hub *obs.Multi) string {
	t.Helper()
	const seed = 20
	duration := 3 * time.Hour

	trace := telemetry.NewTrace()
	c, err := New(Config{
		Name:           "golden",
		Machines:       20,
		DRAMPerMachine: 512 << 20,
		Mode:           node.ModeProactive,
		ModeFn: func(i int) node.Mode {
			switch i % 5 {
			case 3:
				return node.ModeReactive
			case 4:
				return node.ModeDisabled
			default:
				return node.ModeProactive
			}
		},
		Params:    core.DefaultParams,
		SLO:       core.DefaultSLO,
		Seed:      seed,
		Collector: telemetry.NewCollector(trace),
		Faults:    fault.DefaultPlan(seed, duration),
		Breaker:   node.BreakerConfig{Enabled: true},
		Audit:     auditCfg,
		Obs:       hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Populate(50, nil, seed); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(duration); err != nil {
		t.Fatal(err)
	}

	h := fnv.New64a()
	var buf bytes.Buffer
	if err := trace.Save(&buf); err != nil {
		t.Fatal(err)
	}
	h.Write(buf.Bytes())

	for _, m := range c.Machines() {
		m.WriteFingerprint(h)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestGoldenClusterEquivalence(t *testing.T) {
	if raceEnabled {
		t.Skip("golden 20-machine run is too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("golden 20-machine run skipped in -short mode")
	}
	got := goldenFingerprint(t, audit.Config{}, nil)
	path := filepath.Join("testdata", "golden_cluster.txt")
	if os.Getenv("SDFM_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", got)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with SDFM_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Fatalf("cluster fingerprint diverged from the walk-based simulator:\n got %s\nwant %s\n"+
			"The page-store refactor must stay bit-identical (same RNG draw order, same counters).",
			got, strings.TrimSpace(string(want)))
	}
}

// TestGoldenClusterEquivalenceAudited reruns the golden cluster with the
// invariant auditor enabled (deep recounts every 8 steps) and asserts
// the checked-in hash exactly: auditing must observe without perturbing
// — no extra RNG draws, no counter movement — and the shipped tree must
// hold every invariant under the default fault plan for the whole run
// (a violation would fail Run before the hash is taken).
func TestGoldenClusterEquivalenceAudited(t *testing.T) {
	if raceEnabled {
		t.Skip("golden 20-machine run is too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("golden 20-machine run skipped in -short mode")
	}
	got := goldenFingerprint(t, audit.Config{Enabled: true, DeepEverySteps: 8}, nil)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_cluster.txt"))
	if err != nil {
		t.Fatalf("reading golden (run with SDFM_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Fatalf("enabling the auditor changed the simulation:\n got %s\nwant %s\n"+
			"The audit hook must be observation-only.", got, strings.TrimSpace(string(want)))
	}
}

// TestGoldenClusterEquivalenceInstrumented reruns the golden cluster with
// full observability attached — per-machine metrics, tier instruments,
// and phase tracing — and asserts the checked-in hash exactly. The
// metrics layer must observe without perturbing: no extra RNG draws, no
// counter movement, no allocation that shifts arena operation order.
func TestGoldenClusterEquivalenceInstrumented(t *testing.T) {
	if raceEnabled {
		t.Skip("golden 20-machine run is too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("golden 20-machine run skipped in -short mode")
	}
	hub := obs.NewMulti(obs.Label{Key: "run", Value: "golden"})
	got := goldenFingerprint(t, audit.Config{}, hub)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_cluster.txt"))
	if err != nil {
		t.Fatalf("reading golden (run with SDFM_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Fatalf("enabling instrumentation changed the simulation:\n got %s\nwant %s\n"+
			"The obs layer must be observation-only.", got, strings.TrimSpace(string(want)))
	}
	// The run must also have produced something: every machine stepped,
	// so every machine's step counter is non-zero in the export.
	var sb strings.Builder
	if err := hub.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sdfm_node_steps_total") {
		t.Fatal("instrumented run exported no step counters")
	}
}
