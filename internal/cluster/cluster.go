// Package cluster provides a Borg-like cluster of page-accurate machines:
// weighted workload sampling, least-loaded scheduling with memory fit,
// lock-step simulation, A/B machine groups (the Figure 10 methodology),
// and the eviction-SLO accounting of §4.2.
package cluster

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"sdfm/internal/audit"
	"sdfm/internal/core"
	"sdfm/internal/fault"
	"sdfm/internal/mem"
	"sdfm/internal/node"
	"sdfm/internal/obs"
	"sdfm/internal/simtime"
	"sdfm/internal/stats"
	"sdfm/internal/telemetry"
	"sdfm/internal/workload"
	"sdfm/internal/zswap"
)

// Config describes a cluster.
type Config struct {
	Name     string
	Machines int
	// DRAMPerMachine is each machine's near-memory capacity.
	DRAMPerMachine uint64
	// Mode is the default far-memory mode for every machine.
	Mode node.Mode
	// ModeFn, when set, overrides Mode per machine index — used to build
	// control/experiment groups for A/B tests.
	ModeFn func(machineIdx int) node.Mode
	Params core.Params
	SLO    core.SLO
	// CollectSamples enables per-interval sample retention on machines.
	CollectSamples bool
	Seed           int64
	// Collector, when set, receives every machine's 5-minute telemetry
	// exports. The collector is not safe for concurrent use: drive the
	// cluster with Run or Step, not RunParallel, when collecting.
	Collector *telemetry.Collector
	// Faults, when set and non-empty, injects the plan's faults: each
	// machine gets its own deterministic injector keyed by machine name.
	// A nil or empty plan leaves every machine byte-identical to a
	// cluster built without one.
	Faults *fault.Plan
	// Breaker configures the per-job promotion-SLO circuit breaker on
	// every machine; disabled by default.
	Breaker node.BreakerConfig
	// Audit opts every machine into the invariant auditor; a violation
	// fails the offending machine's step with an error wrapping
	// audit.ErrViolation.
	Audit audit.Config
	// TierFn, when set, supplies machine i's far-memory tier instead of
	// the default per-machine zswap pool. The chaos harness injects
	// instrumented tiers this way; nil keeps the default.
	TierFn func(machineIdx int) zswap.FarMemory
	// Obs, when set, gives every machine its own observer (process
	// "<cluster>/<machine>", labels cluster and machine). Each machine
	// writes only to its own observer, so instrumented RunParallel output
	// stays byte-identical to serial runs. Nil disables instrumentation.
	Obs *obs.Multi
}

// Cluster is a set of machines under one scheduler.
type Cluster struct {
	cfg      Config
	machines []*node.Machine
	jobs     int
}

// New builds the cluster's machines.
func New(cfg Config) (*Cluster, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("cluster: %q with %d machines", cfg.Name, cfg.Machines)
	}
	if cfg.DRAMPerMachine == 0 {
		return nil, fmt.Errorf("cluster: %q with zero DRAM per machine", cfg.Name)
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Machines; i++ {
		mode := cfg.Mode
		if cfg.ModeFn != nil {
			mode = cfg.ModeFn(i)
		}
		name := fmt.Sprintf("m%04d", i)
		var tier zswap.FarMemory
		if cfg.TierFn != nil {
			tier = cfg.TierFn(i)
		}
		var observer *obs.Observer
		if cfg.Obs != nil {
			observer = cfg.Obs.Observer(cfg.Name+"/"+name,
				obs.Label{Key: "cluster", Value: cfg.Name},
				obs.Label{Key: "machine", Value: name})
		}
		m, err := node.NewMachine(node.Config{
			Name:           name,
			Cluster:        cfg.Name,
			DRAMBytes:      cfg.DRAMPerMachine,
			Mode:           mode,
			Params:         cfg.Params,
			SLO:            cfg.SLO,
			Tier:           tier,
			CollectSamples: cfg.CollectSamples,
			Seed:           cfg.Seed + int64(i),
			Collector:      cfg.Collector,
			Injector:       fault.NewInjector(cfg.Faults, name),
			Breaker:        cfg.Breaker,
			Audit:          cfg.Audit,
			Obs:            observer,
		})
		if err != nil {
			return nil, err
		}
		c.machines = append(c.machines, m)
	}
	return c, nil
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.cfg.Name }

// Machines returns all machines.
func (c *Cluster) Machines() []*node.Machine { return c.machines }

// JobCount returns the number of jobs scheduled so far.
func (c *Cluster) JobCount() int { return c.jobs }

// Schedule places w on the machine with the most free memory that fits
// it, reserving the workload's full page footprint.
func (c *Cluster) Schedule(w *workload.Workload) (*node.Machine, *node.Job, error) {
	need := uint64(w.Pages()) * mem.PageSize
	var best *node.Machine
	var bestFree uint64
	for _, m := range c.machines {
		used := m.UsedBytes()
		cap := c.cfg.DRAMPerMachine
		if used+need > cap {
			continue
		}
		free := cap - used
		if best == nil || free > bestFree {
			best = m
			bestFree = free
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("cluster: no machine fits %s (%d pages)", w.Name(), w.Pages())
	}
	j, err := best.AddJob(w)
	if err != nil {
		return nil, nil, err
	}
	c.jobs++
	return best, j, nil
}

// Populate samples n workloads from the weighted archetype mix and
// schedules each.
func (c *Cluster) Populate(n int, weights map[string]float64, seed int64) error {
	if weights == nil {
		weights = map[string]float64{}
		for _, a := range workload.Archetypes {
			weights[a.Name] = 1
		}
	}
	rng := simtime.Rand(seed, "cluster-populate/"+c.cfg.Name)
	for i := 0; i < n; i++ {
		total := 0.0
		for _, a := range workload.Archetypes {
			total += weights[a.Name]
		}
		u := rng.Float64() * total
		arch := workload.Archetypes[len(workload.Archetypes)-1]
		for _, a := range workload.Archetypes {
			u -= weights[a.Name]
			if u < 0 {
				arch = a
				break
			}
		}
		w, err := workload.New(workload.Config{
			Archetype: arch,
			Name:      fmt.Sprintf("%s-%03d", arch.Name, i),
			Seed:      seed + int64(i)*7919,
		})
		if err != nil {
			return err
		}
		if _, _, err := c.Schedule(w); err != nil {
			return err
		}
	}
	return nil
}

// Step advances every machine one scan period.
func (c *Cluster) Step() error {
	for _, m := range c.machines {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Run advances every machine until the given time.
func (c *Cluster) Run(until time.Duration) error {
	for _, m := range c.machines {
		if err := m.Run(until); err != nil {
			return err
		}
	}
	return nil
}

// RunParallel advances every machine until the given time on a worker
// pool. Machines share no mutable state, so the result is identical to
// Run regardless of scheduling; wall time improves on multicore hosts.
// workers <= 0 uses GOMAXPROCS.
func (c *Cluster) RunParallel(until time.Duration, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	for _, m := range c.machines {
		wg.Add(1)
		sem <- struct{}{}
		go func(m *node.Machine) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := m.Run(until); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(m)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Evictions sums evictions across machines.
func (c *Cluster) Evictions() int {
	n := 0
	for _, m := range c.machines {
		n += m.Evictions()
	}
	return n
}

// EvictionSLO reports the eviction rate per job over the run so far; the
// production system's eviction SLO was never breached in 18 months.
func (c *Cluster) EvictionSLO() float64 {
	if c.jobs == 0 {
		return 0
	}
	return float64(c.Evictions()) / float64(c.jobs)
}

// CoverageSummary summarizes per-machine cold-memory coverage across
// machines that have any cold memory (Figure 6's per-cluster statistic).
func (c *Cluster) CoverageSummary() stats.Summary {
	var vals []float64
	for _, m := range c.machines {
		if m.ColdPagesAtMin() > 0 {
			vals = append(vals, m.Coverage())
		}
	}
	return stats.Summarize(vals)
}

// ColdFractionSummary summarizes per-machine cold fractions (Figure 2's
// per-cluster statistic).
func (c *Cluster) ColdFractionSummary() stats.Summary {
	var vals []float64
	for _, m := range c.machines {
		vals = append(vals, m.ColdFraction())
	}
	return stats.Summarize(vals)
}

// FaultStats sums fault and degradation counters across machines.
func (c *Cluster) FaultStats() node.FaultStats {
	var total node.FaultStats
	for _, m := range c.machines {
		fs := m.FaultStats()
		total.Crashes += fs.Crashes
		total.StalledSteps += fs.StalledSteps
		total.WatchdogRestarts += fs.WatchdogRestarts
		total.DroppedExports += fs.DroppedExports
		total.ChurnKills += fs.ChurnKills
		total.BreakerTrips += fs.BreakerTrips
		total.BackoffEvents += fs.BackoffEvents
		total.InjectedErrors += fs.InjectedErrors
		total.SlowedStores += fs.SlowedStores
		total.SlowedLoads += fs.SlowedLoads
	}
	return total
}

// Audit runs the invariant catalogue against every machine's current
// state and returns all violations found, regardless of whether per-step
// auditing is configured. deep includes the full-recount checks.
func (c *Cluster) Audit(deep bool) []audit.Violation {
	var vs []audit.Violation
	for _, m := range c.machines {
		vs = append(vs, m.Audit(deep)...)
	}
	return vs
}

// Fingerprint reduces every machine's observable state to one FNV-64a
// hash. Two runs of the same seeded configuration must agree bit for
// bit; the chaos harness uses this to detect nondeterminism.
func (c *Cluster) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, m := range c.machines {
		m.WriteFingerprint(h)
	}
	return h.Sum64()
}

// Group returns the machines currently in the given mode (A/B analysis).
func (c *Cluster) Group(mode node.Mode) []*node.Machine {
	var out []*node.Machine
	for i, m := range c.machines {
		got := c.cfg.Mode
		if c.cfg.ModeFn != nil {
			got = c.cfg.ModeFn(i)
		}
		if got == mode {
			out = append(out, m)
		}
	}
	return out
}
