package cluster

import (
	"strings"
	"testing"
	"time"

	"sdfm/internal/core"
	"sdfm/internal/fault"
	"sdfm/internal/node"
	"sdfm/internal/obs"
)

// TestRunParallelInstrumentedMatchesSequential is the instrumented
// determinism guarantee: with per-machine metrics and tracing attached
// (plus faults and breakers, to exercise every instrumented path), the
// parallel schedule must produce not just byte-identical simulation state
// but byte-identical *exports* — each machine writes only to its own
// observer, and both exporters render in stable creation order, so
// worker scheduling cannot leak into the output.
func TestRunParallelInstrumentedMatchesSequential(t *testing.T) {
	duration := 2 * time.Hour
	build := func() (*Cluster, *obs.Multi) {
		hub := obs.NewMulti(obs.Label{Key: "run", Value: "instr"})
		c := newCluster(t, Config{
			Machines: 3, DRAMPerMachine: 2 * gib,
			Mode: node.ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute},
			Seed:    60,
			Faults:  fault.DefaultPlan(60, duration),
			Breaker: node.BreakerConfig{Enabled: true},
			Obs:     hub,
		})
		if err := c.Populate(6, nil, 61); err != nil {
			t.Fatal(err)
		}
		return c, hub
	}
	seq, seqHub := build()
	if err := seq.Run(duration); err != nil {
		t.Fatal(err)
	}
	par, parHub := build()
	if err := par.RunParallel(duration, 4); err != nil {
		t.Fatal(err)
	}
	for i := range seq.Machines() {
		a, b := seq.Machines()[i], par.Machines()[i]
		fa, fb := machineFingerprint(a), machineFingerprint(b)
		if fa != fb {
			t.Fatalf("machine %d state diverges between instrumented Run and RunParallel:\nseq:\n%s\npar:\n%s", i, fa, fb)
		}
	}
	if seq.Fingerprint() != par.Fingerprint() {
		t.Fatalf("cluster fingerprints diverge: %016x vs %016x", seq.Fingerprint(), par.Fingerprint())
	}

	render := func(hub *obs.Multi) (string, string) {
		var prom, chrome strings.Builder
		if err := hub.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := hub.WriteChromeTrace(&chrome); err != nil {
			t.Fatal(err)
		}
		return prom.String(), chrome.String()
	}
	seqProm, seqChrome := render(seqHub)
	parProm, parChrome := render(parHub)
	if seqProm != parProm {
		t.Fatalf("Prometheus exports diverge between Run and RunParallel:\nseq:\n%s\npar:\n%s", seqProm, parProm)
	}
	if seqChrome != parChrome {
		t.Fatal("Chrome trace exports diverge between Run and RunParallel")
	}
	if !strings.Contains(seqProm, `machine="m0002"`) {
		t.Fatal("export is missing per-machine series")
	}
	if !strings.Contains(seqChrome, `"ph":"X"`) {
		t.Fatal("trace export has no spans")
	}
}

// TestMachineObsCountersTrackSimulation pins the instrument values to the
// machine's own counters after a run: steps, promotions, and gauges must
// agree with the simulation state they mirror.
func TestMachineObsCountersTrackSimulation(t *testing.T) {
	hub := obs.NewMulti()
	c := newCluster(t, Config{
		Machines: 1, DRAMPerMachine: 2 * gib,
		Mode: node.ModeProactive, Params: core.Params{K: 95, S: 10 * time.Minute},
		Seed: 7,
		Obs:  hub,
	})
	if err := c.Populate(2, nil, 8); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	m := c.Machines()[0]
	o := hub.Observers()[0]

	// Registering an already-registered instrument returns the same
	// series, so reading back through the observer is exact.
	steps := o.Counter("sdfm_node_steps_total", "Completed machine steps.")
	if want := 2 * time.Hour / (120 * time.Second); steps.Value() != float64(want) {
		t.Errorf("steps counter %v, machine stepped %d times", steps.Value(), want)
	}
	var promos uint64
	for _, j := range m.Jobs() {
		promos += j.Promotions
	}
	pc := o.Counter("sdfm_node_promotions_total", "Promotion faults served.")
	if pc.Value() != float64(promos) {
		t.Errorf("promotions counter %v, jobs account %d", pc.Value(), promos)
	}
	resident := o.Gauge("sdfm_node_resident_bytes", "Near memory held by running jobs.")
	if resident.Value() != float64(m.ResidentBytes()) {
		t.Errorf("resident gauge %v, machine reports %d", resident.Value(), m.ResidentBytes())
	}
	compressed := o.Gauge("sdfm_node_compressed_pages", "Pages currently in far memory.")
	if compressed.Value() != float64(m.CompressedPages()) {
		t.Errorf("compressed gauge %v, machine reports %d", compressed.Value(), m.CompressedPages())
	}
	if m.CompressedPages() == 0 {
		t.Fatal("benchmark workload compressed nothing; gauge comparison is vacuous")
	}
}
