//go:build race

package cluster

// raceEnabled lets the serial byte-determinism sims skip under the race
// detector's ~15x slowdown; they assert reproducibility, not concurrency,
// and RunParallel coverage stays race-checked elsewhere in this package.
const raceEnabled = true
