// Package gp implements Gaussian-process regression and the GP-Bandit
// (GP-UCB) acquisition the paper's autotuner uses for black-box
// optimization of control-plane parameters (§5.3).
//
// The implementation is self-contained: kernels, exact GP posterior via
// Cholesky factorization (internal/linalg), log marginal likelihood for
// hyperparameter selection, and an upper-confidence-bound acquisition
// rule with a no-regret flavour following Srinivas et al.
package gp

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"sdfm/internal/linalg"
)

// Kernel is a positive-definite covariance function over R^d.
type Kernel interface {
	Eval(x, y []float64) float64
}

// RBF is the squared-exponential kernel with per-dimension (ARD) length
// scales: k(x,y) = σ² · exp(-½ Σ ((x_i-y_i)/l_i)²).
type RBF struct {
	Variance     float64
	LengthScales []float64
}

// Eval implements Kernel.
func (k RBF) Eval(x, y []float64) float64 {
	if len(x) != len(y) || len(x) != len(k.LengthScales) {
		panic(fmt.Sprintf("gp: RBF dimension mismatch %d/%d/%d", len(x), len(y), len(k.LengthScales)))
	}
	s := 0.0
	for i := range x {
		d := (x[i] - y[i]) / k.LengthScales[i]
		s += d * d
	}
	return k.Variance * math.Exp(-0.5*s)
}

// Matern52 is the Matérn 5/2 kernel with a single length scale, a common
// default for Bayesian optimization of rougher objectives.
type Matern52 struct {
	Variance    float64
	LengthScale float64
}

// Eval implements Kernel.
func (k Matern52) Eval(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("gp: Matern52 dimension mismatch")
	}
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	r := math.Sqrt(s) / k.LengthScale
	a := math.Sqrt(5) * r
	return k.Variance * (1 + a + 5*r*r/3) * math.Exp(-a)
}

// ErrNoData is returned when predicting from an unfitted GP.
var ErrNoData = errors.New("gp: no observations")

// GP is an exact Gaussian-process regressor. Construct with New, add
// observations, then Fit before Predict.
type GP struct {
	kernel Kernel
	noise  float64 // observation noise variance

	xs [][]float64
	ys []float64

	meanY float64 // ys are centred internally
	chol  *linalg.Matrix
	alpha []float64
	fresh bool
}

// New creates a GP with the given kernel and observation noise variance.
func New(kernel Kernel, noiseVar float64) *GP {
	if noiseVar <= 0 {
		panic(fmt.Sprintf("gp: non-positive noise variance %v", noiseVar))
	}
	return &GP{kernel: kernel, noise: noiseVar}
}

// Add appends an observation. The input is copied.
func (g *GP) Add(x []float64, y float64) {
	g.xs = append(g.xs, append([]float64(nil), x...))
	g.ys = append(g.ys, y)
	g.fresh = false
}

// N returns the number of observations.
func (g *GP) N() int { return len(g.xs) }

// Fit factorizes the kernel matrix. It must be called after Add and before
// Predict; calling it repeatedly is cheapest-effort idempotent.
func (g *GP) Fit() error {
	n := len(g.xs)
	if n == 0 {
		return ErrNoData
	}
	g.meanY = 0
	for _, y := range g.ys {
		g.meanY += y
	}
	g.meanY /= float64(n)

	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel.Eval(g.xs[i], g.xs[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+g.noise)
	}
	// Retry with growing jitter if the kernel matrix is numerically
	// singular (duplicate points with tiny noise).
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		kj := k
		if jitter > 0 {
			kj = k.Clone()
			for i := 0; i < n; i++ {
				kj.Set(i, i, kj.At(i, i)+jitter)
			}
		}
		chol, err := linalg.Cholesky(kj)
		if err == nil {
			g.chol = chol
			centred := make([]float64, n)
			for i, y := range g.ys {
				centred[i] = y - g.meanY
			}
			g.alpha = linalg.CholeskySolve(chol, centred)
			g.fresh = true
			return nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return fmt.Errorf("gp: kernel matrix not positive definite even with jitter")
}

// Predict returns the posterior mean and variance at x.
func (g *GP) Predict(x []float64) (mean, variance float64, err error) {
	if !g.fresh {
		if err := g.Fit(); err != nil {
			return 0, 0, err
		}
	}
	n := len(g.xs)
	kstar := make([]float64, n)
	for i, xi := range g.xs {
		kstar[i] = g.kernel.Eval(xi, x)
	}
	mean = g.meanY + linalg.Dot(kstar, g.alpha)
	v := linalg.SolveLower(g.chol, kstar)
	variance = g.kernel.Eval(x, x) - linalg.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance, nil
}

// LogMarginalLikelihood returns log p(y|X) under the current kernel, the
// quantity maximized during hyperparameter selection.
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if !g.fresh {
		if err := g.Fit(); err != nil {
			return 0, err
		}
	}
	n := float64(len(g.xs))
	centred := make([]float64, len(g.ys))
	for i, y := range g.ys {
		centred[i] = y - g.meanY
	}
	return -0.5*linalg.Dot(centred, g.alpha) -
		0.5*linalg.LogDetFromCholesky(g.chol) -
		0.5*n*math.Log(2*math.Pi), nil
}

// UCB returns the upper confidence bound mean + beta·std at x.
func (g *GP) UCB(x []float64, beta float64) (float64, error) {
	m, v, err := g.Predict(x)
	if err != nil {
		return 0, err
	}
	return m + beta*math.Sqrt(v), nil
}

// UCBBeta returns the exploration coefficient for round t over a candidate
// set of size |D|, following the GP-UCB schedule β_t = 2 log(|D| t² π²/6δ)
// with δ = 0.1 (Srinivas et al.).
func UCBBeta(t, candidates int) float64 {
	if t < 1 {
		t = 1
	}
	if candidates < 1 {
		candidates = 1
	}
	const delta = 0.1
	v := 2 * math.Log(float64(candidates)*float64(t*t)*math.Pi*math.Pi/(6*delta))
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// FitHyperparams grid-searches RBF hyperparameters (shared across
// dimensions scaled per-dimension) by log marginal likelihood, returning
// the best kernel found. dims is the input dimensionality; observations
// must already be added to g via Add and inputs should be normalized to
// [0, 1].
func FitHyperparams(xs [][]float64, ys []float64, noiseVar float64) (Kernel, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	dims := len(xs[0])
	variances := []float64{0.25, 1, 4}
	scales := []float64{0.1, 0.2, 0.4, 0.8}
	type cell struct{ v, s float64 }
	var cells []cell
	for _, v := range variances {
		for _, s := range scales {
			cells = append(cells, cell{v, s})
		}
	}
	// Each grid cell fits its own GP, so the cells are independent; they
	// run on a bounded worker pool and the argmax reduction below walks
	// them in grid order with strict >, reproducing the serial search's
	// choice (ties included) exactly.
	lmls := make([]float64, len(cells))
	oks := make([]bool, len(cells))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := w; c < len(cells); c += workers {
				ls := make([]float64, dims)
				for i := range ls {
					ls[i] = cells[c].s
				}
				g := New(RBF{Variance: cells[c].v, LengthScales: ls}, noiseVar)
				for i := range xs {
					g.Add(xs[i], ys[i])
				}
				lml, err := g.LogMarginalLikelihood()
				if err != nil {
					continue
				}
				lmls[c] = lml
				oks[c] = true
			}
		}(w)
	}
	wg.Wait()
	var (
		bestK   Kernel
		bestLML = math.Inf(-1)
	)
	for c := range cells {
		if !oks[c] {
			continue
		}
		if lmls[c] > bestLML {
			bestLML = lmls[c]
			ls := make([]float64, dims)
			for i := range ls {
				ls[i] = cells[c].s
			}
			bestK = RBF{Variance: cells[c].v, LengthScales: ls}
		}
	}
	if bestK == nil {
		return nil, fmt.Errorf("gp: no hyperparameter configuration fit the data")
	}
	return bestK, nil
}
