package gp

import (
	"math"
	"math/rand"
	"testing"
)

func TestRBFKernelProperties(t *testing.T) {
	k := RBF{Variance: 2, LengthScales: []float64{0.5, 0.5}}
	x := []float64{0.3, 0.7}
	// k(x,x) = variance.
	if got := k.Eval(x, x); got != 2 {
		t.Errorf("k(x,x) = %v, want 2", got)
	}
	// Symmetry.
	y := []float64{0.8, 0.1}
	if k.Eval(x, y) != k.Eval(y, x) {
		t.Error("RBF not symmetric")
	}
	// Decay with distance.
	near := k.Eval(x, []float64{0.31, 0.71})
	far := k.Eval(x, []float64{0.9, 0.0})
	if near <= far {
		t.Error("RBF does not decay with distance")
	}
}

func TestMatern52Properties(t *testing.T) {
	k := Matern52{Variance: 1.5, LengthScale: 0.3}
	x := []float64{0.5}
	if got := k.Eval(x, x); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("k(x,x) = %v", got)
	}
	if k.Eval(x, []float64{0.6}) <= k.Eval(x, []float64{0.9}) {
		t.Error("Matern52 does not decay")
	}
	if k.Eval([]float64{0.1}, []float64{0.7}) != k.Eval([]float64{0.7}, []float64{0.1}) {
		t.Error("Matern52 not symmetric")
	}
}

func TestGPInterpolatesWithSmallNoise(t *testing.T) {
	g := New(RBF{Variance: 1, LengthScales: []float64{0.3}}, 1e-8)
	f := func(x float64) float64 { return math.Sin(2 * math.Pi * x) }
	for _, x := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		g.Add([]float64{x}, f(x))
	}
	if err := g.Fit(); err != nil {
		t.Fatal(err)
	}
	// At training points the posterior mean matches and variance is ~0.
	for _, x := range []float64{0.2, 0.6} {
		m, v, err := g.Predict([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m-f(x)) > 1e-3 {
			t.Errorf("mean at %v = %v, want %v", x, m, f(x))
		}
		if v > 1e-4 {
			t.Errorf("variance at training point = %v", v)
		}
	}
	// Interpolation between points is close; extrapolation variance grows.
	m, _, _ := g.Predict([]float64{0.3})
	if math.Abs(m-f(0.3)) > 0.12 {
		t.Errorf("interpolated mean at 0.3 = %v, want ~%v", m, f(0.3))
	}
	_, vIn, _ := g.Predict([]float64{0.3})
	_, vOut, _ := g.Predict([]float64{3.0})
	if vOut <= vIn {
		t.Errorf("extrapolation variance %v <= interpolation variance %v", vOut, vIn)
	}
}

func TestGPPredictUnfitted(t *testing.T) {
	g := New(RBF{Variance: 1, LengthScales: []float64{1}}, 0.01)
	if _, _, err := g.Predict([]float64{0}); err == nil {
		t.Error("predict with no data succeeded")
	}
	if err := g.Fit(); err == nil {
		t.Error("fit with no data succeeded")
	}
}

func TestGPAutoRefitsAfterAdd(t *testing.T) {
	g := New(RBF{Variance: 1, LengthScales: []float64{0.3}}, 1e-6)
	g.Add([]float64{0}, 0)
	m1, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	g.Add([]float64{0.5}, 10)
	m2, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2-10) > 0.5 || math.Abs(m1-m2) < 1 {
		t.Errorf("posterior did not update after Add: %v -> %v", m1, m2)
	}
}

func TestGPDuplicatePointsJitter(t *testing.T) {
	// Duplicate inputs make K singular without noise/jitter; Fit must
	// still succeed.
	g := New(RBF{Variance: 1, LengthScales: []float64{0.5}}, 1e-12)
	for i := 0; i < 5; i++ {
		g.Add([]float64{0.5}, 1.0)
	}
	if err := g.Fit(); err != nil {
		t.Fatalf("Fit with duplicates: %v", err)
	}
	m, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1) > 0.01 {
		t.Errorf("mean at duplicated point = %v", m)
	}
}

func TestGPNoiseSmoothing(t *testing.T) {
	// With large observation noise the GP must not chase noisy targets.
	rng := rand.New(rand.NewSource(1))
	g := New(RBF{Variance: 1, LengthScales: []float64{0.4}}, 0.5)
	for i := 0; i < 40; i++ {
		x := float64(i) / 39
		g.Add([]float64{x}, 2+rng.NormFloat64()*0.7)
	}
	m, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-2) > 0.5 {
		t.Errorf("noisy mean = %v, want ~2", m)
	}
}

func TestUCBExceedsMean(t *testing.T) {
	g := New(RBF{Variance: 1, LengthScales: []float64{0.3}}, 0.01)
	g.Add([]float64{0}, 1)
	g.Add([]float64{1}, 2)
	m, _, _ := g.Predict([]float64{0.5})
	u, err := g.UCB([]float64{0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u < m {
		t.Errorf("UCB %v below mean %v", u, m)
	}
	u0, _ := g.UCB([]float64{0.5}, 0)
	if math.Abs(u0-m) > 1e-12 {
		t.Errorf("UCB with beta=0 = %v, want mean %v", u0, m)
	}
}

func TestUCBBetaGrows(t *testing.T) {
	b1 := UCBBeta(1, 100)
	b10 := UCBBeta(10, 100)
	if b10 <= b1 {
		t.Errorf("beta(10) = %v <= beta(1) = %v", b10, b1)
	}
	if UCBBeta(0, 0) < 0 {
		t.Error("beta must be nonnegative")
	}
}

func TestLogMarginalLikelihoodPrefersTrueScale(t *testing.T) {
	// Data drawn from a smooth function: a reasonable length scale must
	// beat an absurdly small one.
	xs := make([][]float64, 0, 20)
	ys := make([]float64, 0, 20)
	for i := 0; i < 20; i++ {
		x := float64(i) / 19
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(2*math.Pi*x))
	}
	lml := func(scale float64) float64 {
		g := New(RBF{Variance: 1, LengthScales: []float64{scale}}, 0.01)
		for i := range xs {
			g.Add(xs[i], ys[i])
		}
		v, err := g.LogMarginalLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if lml(0.2) <= lml(0.001) {
		t.Error("LML prefers degenerate tiny length scale")
	}
}

func TestFitHyperparams(t *testing.T) {
	xs := make([][]float64, 0, 25)
	ys := make([]float64, 0, 25)
	for i := 0; i < 25; i++ {
		x := float64(i) / 24
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(2*math.Pi*x))
	}
	k, err := FitHyperparams(xs, ys, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	g := New(k, 0.01)
	for i := range xs {
		g.Add(xs[i], ys[i])
	}
	m, _, err := g.Predict([]float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1) > 0.3 {
		t.Errorf("tuned GP mean at peak = %v, want ~1", m)
	}
	if _, err := FitHyperparams(nil, nil, 0.01); err == nil {
		t.Error("FitHyperparams with no data succeeded")
	}
}

func TestNewPanicsOnBadNoise(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero noise did not panic")
		}
	}()
	New(RBF{Variance: 1, LengthScales: []float64{1}}, 0)
}

func TestKernelDimMismatchPanics(t *testing.T) {
	k := RBF{Variance: 1, LengthScales: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	k.Eval([]float64{1, 2}, []float64{1, 2})
}

func TestGPN(t *testing.T) {
	g := New(RBF{Variance: 1, LengthScales: []float64{1}}, 0.01)
	if g.N() != 0 {
		t.Error("fresh GP has observations")
	}
	g.Add([]float64{0}, 1)
	g.Add([]float64{1}, 2)
	if g.N() != 2 {
		t.Errorf("N = %d", g.N())
	}
}

func TestUCBUnfittedErrors(t *testing.T) {
	g := New(RBF{Variance: 1, LengthScales: []float64{1}}, 0.01)
	if _, err := g.UCB([]float64{0}, 1); err == nil {
		t.Error("UCB with no data succeeded")
	}
	if _, err := g.LogMarginalLikelihood(); err == nil {
		t.Error("LML with no data succeeded")
	}
}

func TestUCBBetaClampsNonPositive(t *testing.T) {
	// Tiny candidate sets at t=1 can push the log argument below 1; beta
	// must clamp at 0 rather than NaN.
	got := UCBBeta(1, 1)
	if math.IsNaN(got) || got < 0 {
		t.Errorf("UCBBeta(1,1) = %v", got)
	}
}
