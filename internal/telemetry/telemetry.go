// Package telemetry implements the trace pipeline between the node agent
// and the offline far-memory model (§5.2–5.3).
//
// Every aggregation interval (5 minutes in production) the node agent
// exports, per job: the working set size, the cold-age histogram, and the
// promotion histogram for the interval. The paper stores these over a set
// of predefined cold-age thresholds rather than all 256 age buckets; this
// package does the same, recording the *tail sums* at each predefined
// threshold — exactly the quantities ("cold bytes under T", "promotions
// under T") the fast model replays — which keeps week-long fleet traces
// compact.
package telemetry

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"sdfm/internal/histogram"
)

// DefaultThresholds is the predefined cold-age threshold set, in scan
// periods (120 s units), spanning 2 minutes to the 8.5-hour age limit with
// roughly geometric spacing.
var DefaultThresholds = []int{
	1, 2, 3, 4, 5, 6, 8, 10, 13, 17, 22, 28, 36, 46, 59, 75, 96, 123, 157, 200, 255,
}

// DefaultAggregation is the production trace aggregation interval.
const DefaultAggregation = 5 * time.Minute

// TailsAt evaluates h's tail sums at each threshold (in buckets).
func TailsAt(h *histogram.Histogram, thresholds []int) []uint64 {
	tails := h.TailSums()
	out := make([]uint64, len(thresholds))
	for i, t := range thresholds {
		if t < 0 || t >= histogram.NumBuckets {
			panic(fmt.Sprintf("telemetry: threshold bucket %d out of range", t))
		}
		out[i] = tails[t]
	}
	return out
}

// JobKey uniquely identifies a job instance in the fleet.
type JobKey struct {
	Cluster string
	Machine string
	Job     string
}

// String renders the key as cluster/machine/job.
func (k JobKey) String() string {
	return k.Cluster + "/" + k.Machine + "/" + k.Job
}

// Entry is one job's far-memory trace record for one aggregation interval.
type Entry struct {
	Key JobKey
	// TimestampSec is the interval end, in simulated seconds.
	TimestampSec int64
	// IntervalMinutes is the aggregation interval length.
	IntervalMinutes float64
	// WSSPages is the working set (pages accessed within the minimum
	// threshold) at interval end.
	WSSPages uint64
	// TotalPages is the job's total page population.
	TotalPages uint64
	// ColdTails[i] is the number of pages idle for at least
	// Trace.Thresholds[i] scan periods at interval end.
	ColdTails []uint64
	// PromoTails[i] is the number of promotions during the interval to
	// pages whose age was at least Trace.Thresholds[i].
	PromoTails []uint64
	// CompressibleFrac is the fraction of the job's cold pages that
	// actually compress (the rest are incompressible media/ciphertext and
	// never enter zswap). Zero is treated as 1 for backward compatibility.
	CompressibleFrac float64
	// Checksum is an FNV-1a digest over every other field, set when the
	// entry enters a trace and verified on load so at-rest corruption is
	// detected instead of silently replayed. Zero means "unchecksummed"
	// (a trace written before checksums existed).
	Checksum uint64
}

// FNV-1a 64 constants (hash/fnv's offset basis and prime). The digest
// below hand-rolls the hash with the state in a register — the checksum
// runs once per entry on the controller's ingest drain, where the
// hash.Hash64 interface indirection and per-Write state loads were a
// measurable share of the whole path — producing bit-identical sums to
// the previous fnv.New64a implementation (stored checksums in existing
// trace stores stay valid).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvString folds s plus the NUL separator into h.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h * fnvPrime64 // the \0 separator: h ^ 0 == h
}

// fnvWord folds v's little-endian bytes into h.
func fnvWord(h, v uint64) uint64 {
	h = (h ^ (v & 0xff)) * fnvPrime64
	h = (h ^ (v >> 8 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 16 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 24 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 32 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 40 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 48 & 0xff)) * fnvPrime64
	h = (h ^ (v >> 56)) * fnvPrime64
	return h
}

// ComputeChecksum digests every field except Checksum itself.
func (e *Entry) ComputeChecksum() uint64 {
	h := fnvOffset64
	h = fnvString(h, e.Key.Cluster)
	h = fnvString(h, e.Key.Machine)
	h = fnvString(h, e.Key.Job)
	h = fnvWord(h, uint64(e.TimestampSec))
	h = fnvWord(h, math.Float64bits(e.IntervalMinutes))
	h = fnvWord(h, e.WSSPages)
	h = fnvWord(h, e.TotalPages)
	h = fnvWord(h, uint64(len(e.ColdTails)))
	for _, v := range e.ColdTails {
		h = fnvWord(h, v)
	}
	h = fnvWord(h, uint64(len(e.PromoTails)))
	for _, v := range e.PromoTails {
		h = fnvWord(h, v)
	}
	h = fnvWord(h, math.Float64bits(e.CompressibleFrac))
	return h
}

// VerifyChecksum reports corruption: a nonzero stored checksum that does
// not match the entry's content.
func (e *Entry) VerifyChecksum() error {
	if e.Checksum == 0 {
		return nil // legacy unchecksummed entry
	}
	if got := e.ComputeChecksum(); got != e.Checksum {
		return fmt.Errorf("telemetry: entry %s at t=%ds corrupt: checksum %#x, content digests to %#x",
			e.Key, e.TimestampSec, e.Checksum, got)
	}
	return nil
}

// Validate checks an entry against the trace's threshold set size.
func (e *Entry) Validate(numThresholds int) error {
	if len(e.ColdTails) != numThresholds || len(e.PromoTails) != numThresholds {
		return fmt.Errorf("telemetry: entry %s has %d/%d tails, want %d",
			e.Key, len(e.ColdTails), len(e.PromoTails), numThresholds)
	}
	if e.IntervalMinutes <= 0 {
		return fmt.Errorf("telemetry: entry %s has interval %v", e.Key, e.IntervalMinutes)
	}
	for i := 1; i < len(e.ColdTails); i++ {
		if e.ColdTails[i] > e.ColdTails[i-1] || e.PromoTails[i] > e.PromoTails[i-1] {
			return fmt.Errorf("telemetry: entry %s tails not monotone at %d", e.Key, i)
		}
	}
	if e.CompressibleFrac < 0 || e.CompressibleFrac > 1 {
		return fmt.Errorf("telemetry: entry %s compressible fraction %v outside [0, 1]", e.Key, e.CompressibleFrac)
	}
	return nil
}

// Trace is an ordered collection of entries sharing one threshold set.
type Trace struct {
	// ScanPeriodSeconds is the age quantum underlying the thresholds.
	ScanPeriodSeconds int64
	// Thresholds is the predefined cold-age threshold set, in scan periods.
	Thresholds []int
	Entries    []Entry
}

// NewTrace creates an empty trace with the default threshold set.
func NewTrace() *Trace {
	return &Trace{
		ScanPeriodSeconds: int64(histogram.DefaultScanPeriod / time.Second),
		Thresholds:        append([]int(nil), DefaultThresholds...),
	}
}

// Append adds an entry after validation, stamping its checksum if unset.
func (t *Trace) Append(e Entry) error {
	if err := e.Validate(len(t.Thresholds)); err != nil {
		return err
	}
	if e.Checksum == 0 {
		e.Checksum = e.ComputeChecksum()
	}
	t.Entries = append(t.Entries, e)
	return nil
}

// Scrub removes entries that fail validation or checksum verification,
// returning how many were dropped. It is the degraded-mode counterpart to
// LoadTrace's strict rejection: a control plane that must keep running on
// a partially corrupted trace scrubs it and replays the gaps-accounted
// remainder (see model.JobResult.GapIntervals).
func (t *Trace) Scrub() int {
	kept := t.Entries[:0]
	dropped := 0
	for i := range t.Entries {
		e := &t.Entries[i]
		if e.Validate(len(t.Thresholds)) != nil || e.VerifyChecksum() != nil {
			dropped++
			continue
		}
		kept = append(kept, *e)
	}
	t.Entries = kept
	return dropped
}

// Len returns the number of entries.
func (t *Trace) Len() int { return len(t.Entries) }

// JobSeries groups entries by job, each series sorted by timestamp. The
// fast model replays each series independently.
func (t *Trace) JobSeries() map[JobKey][]Entry {
	out := make(map[JobKey][]Entry)
	for _, e := range t.Entries {
		out[e.Key] = append(out[e.Key], e)
	}
	for k := range out {
		s := out[k]
		sort.Slice(s, func(i, j int) bool { return s[i].TimestampSec < s[j].TimestampSec })
	}
	return out
}

// Jobs returns the distinct job keys in deterministic order.
func (t *Trace) Jobs() []JobKey {
	seen := make(map[JobKey]bool)
	var keys []JobKey
	for _, e := range t.Entries {
		if !seen[e.Key] {
			seen[e.Key] = true
			keys = append(keys, e.Key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// ThresholdIndexFor returns the index of the smallest predefined threshold
// >= bucket, or the last index if bucket exceeds them all.
func (t *Trace) ThresholdIndexFor(bucket int) int {
	for i, th := range t.Thresholds {
		if th >= bucket {
			return i
		}
	}
	return len(t.Thresholds) - 1
}

// gobMagic prefixes every gob trace written by Save since the format was
// versioned; the byte after it is the version. Streams without the magic
// are decoded as version-0 legacy traces for backward compatibility.
const gobMagic = "SDFMGOB"

// GobVersion is the gob stream version Save writes.
const GobVersion = 1

// ErrUnsupportedVersion is wrapped by LoadTrace when a trace carries a
// format version this build does not understand; branch on it with
// errors.Is instead of parsing a raw gob decode failure.
var ErrUnsupportedVersion = errors.New("telemetry: unsupported trace format version")

// Save encodes the trace with gob behind a magic/version header, so
// future layout changes fail loading with a typed version error instead
// of a gob decode panic deep in the stream.
func (t *Trace) Save(w io.Writer) error {
	hdr := append([]byte(gobMagic), GobVersion)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("telemetry: writing trace header: %w", err)
	}
	return gob.NewEncoder(w).Encode(t)
}

// LoadTrace decodes a trace written by Save — current versioned streams
// and legacy headerless ones — rejecting unknown versions with an error
// wrapping ErrUnsupportedVersion, and malformed or corrupted entries
// with a descriptive error.
func LoadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(gobMagic) + 1)
	if err == nil && string(head[:len(gobMagic)]) == gobMagic {
		if v := head[len(gobMagic)]; v != GobVersion {
			return nil, fmt.Errorf("%w: trace is version %d, this build reads %d", ErrUnsupportedVersion, v, GobVersion)
		}
		if _, err := br.Discard(len(gobMagic) + 1); err != nil {
			return nil, fmt.Errorf("telemetry: decoding trace: %w", err)
		}
	}
	var t Trace
	if err := gob.NewDecoder(br).Decode(&t); err != nil {
		return nil, fmt.Errorf("telemetry: decoding trace: %w", err)
	}
	if err := validateLoaded(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTraceJSON decodes a trace written in the JSON interchange format
// (cmd/tracegen -format json), with the same validation as LoadTrace.
func LoadTraceJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("telemetry: decoding JSON trace: %w", err)
	}
	if err := validateLoaded(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

func validateLoaded(t *Trace) error {
	if t.ScanPeriodSeconds <= 0 {
		return fmt.Errorf("telemetry: trace with non-positive scan period %d", t.ScanPeriodSeconds)
	}
	if len(t.Thresholds) == 0 {
		return fmt.Errorf("telemetry: trace with no thresholds")
	}
	for i := 1; i < len(t.Thresholds); i++ {
		if t.Thresholds[i] <= t.Thresholds[i-1] {
			return fmt.Errorf("telemetry: thresholds not strictly increasing at %d", i)
		}
	}
	for i := range t.Entries {
		if err := t.Entries[i].Validate(len(t.Thresholds)); err != nil {
			return fmt.Errorf("telemetry: loaded entry %d invalid: %w", i, err)
		}
		if err := t.Entries[i].VerifyChecksum(); err != nil {
			return fmt.Errorf("telemetry: loaded entry %d: %w", i, err)
		}
	}
	return nil
}

// EntrySink receives finished interval entries. *Trace is the in-memory
// sink; tracestore.Writer is the streaming on-disk one, which lets a
// collector export a fleet run to a file as intervals close without the
// trace ever being fully materialized.
type EntrySink interface {
	Append(e Entry) error
}

// Collector accumulates per-job interval deltas for export. The node
// agent feeds it cumulative promotion histograms; the collector converts
// them to interval tails and appends each closed interval to its sink.
// Record, Forget, and Resets are safe for concurrent use — one collector
// can serve every job goroutine on a machine — but the sink sees appends
// serialized under the collector's mutex, not concurrently.
type Collector struct {
	mu         sync.Mutex
	sink       EntrySink
	thresholds []int
	trace      *Trace              // non-nil only for in-memory collectors
	prevPromo  map[JobKey][]uint64 // previous cumulative promotion tails
	resets     int
}

// NewCollector creates a collector writing into trace.
func NewCollector(trace *Trace) *Collector {
	c := NewStreamCollector(trace, trace.Thresholds)
	c.trace = trace
	return c
}

// NewStreamCollector creates a collector exporting to an arbitrary sink
// — streaming ingest with no full-trace buffering. thresholds is the
// predefined cold-age threshold set the sink's trace was created with.
func NewStreamCollector(sink EntrySink, thresholds []int) *Collector {
	return &Collector{
		sink:       sink,
		thresholds: append([]int(nil), thresholds...),
		prevPromo:  make(map[JobKey][]uint64),
	}
}

// Record exports one job interval. promoCumulative is the job's cumulative
// promotion histogram; census the current cold-age census.
//
// A cumulative counter that moved backwards at any threshold means the
// daemon restarted and its counters rebased (a machine crash produces
// exactly this). The regression is detected across *all* indices before
// any baseline state is touched — never mid-update, which would leave the
// baseline half-new and silently corrupt the next interval's deltas — and
// the collector re-baselines: the current cumulative tails are recorded as
// the interval's deltas (they are the promotions since the restart) and
// become the new baseline. Resets() counts these re-baselines.
func (c *Collector) Record(key JobKey, now time.Duration, intervalMinutes float64,
	promoCumulative, census *histogram.Histogram, wssPages uint64) error {

	promoTails := TailsAt(promoCumulative, c.thresholds)
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.prevPromo[key]; ok {
		regressed := false
		for i := range promoTails {
			if promoTails[i] < prev[i] {
				regressed = true
				break
			}
		}
		if regressed {
			c.resets++
			copy(prev, promoTails)
		} else {
			for i := range promoTails {
				d := promoTails[i] - prev[i]
				prev[i] = promoTails[i]
				promoTails[i] = d
			}
		}
		c.prevPromo[key] = prev
	} else {
		c.prevPromo[key] = append([]uint64(nil), promoTails...)
	}
	e := Entry{
		Key:             key,
		TimestampSec:    int64(now / time.Second),
		IntervalMinutes: intervalMinutes,
		WSSPages:        wssPages,
		TotalPages:      census.Total(),
		ColdTails:       TailsAt(census, c.thresholds),
		PromoTails:      promoTails,
	}
	return c.sink.Append(e)
}

// Forget drops interval state for a job that has exited.
func (c *Collector) Forget(key JobKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.prevPromo, key)
}

// Resets reports how many times a backwards-moving cumulative counter
// forced a baseline reset (daemon restarts observed by the collector).
func (c *Collector) Resets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resets
}

// Trace returns the underlying trace for in-memory collectors, nil for
// stream collectors (their entries are already at the sink).
func (c *Collector) Trace() *Trace { return c.trace }
