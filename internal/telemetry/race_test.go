package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sdfm/internal/histogram"
)

// TestCollectorConcurrentRecord hammers one shared collector from many
// goroutines — concurrent Record on distinct jobs interleaved with Forget
// and Resets reads — and asserts nothing is lost. Run under -race (the CI
// race job includes this package) it also proves the collector's locking:
// before the mutex, concurrent Record calls raced on prevPromo and the
// shared sink.
func TestCollectorConcurrentRecord(t *testing.T) {
	const (
		goroutines = 8
		intervals  = 50
	)
	trace := NewTrace()
	c := NewCollector(trace)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := JobKey{Cluster: "c", Machine: "m", Job: fmt.Sprintf("job-%d", g)}
			promo := histogram.New(histogram.DefaultScanPeriod)
			census := histogram.New(histogram.DefaultScanPeriod)
			census.Add(10, 1000)
			for i := 1; i <= intervals; i++ {
				promo.Add(10, uint64(g+1)) // cumulative promotions grow each interval
				now := time.Duration(i) * 5 * time.Minute
				if err := c.Record(key, now, 5, promo, census, 1000); err != nil {
					errs <- fmt.Errorf("goroutine %d interval %d: %w", g, i, err)
					return
				}
				// Interleave the other concurrent entry points.
				if c.Resets() != 0 {
					errs <- fmt.Errorf("goroutine %d: spurious baseline reset", g)
					return
				}
				c.Forget(JobKey{Cluster: "c", Machine: "m", Job: fmt.Sprintf("gone-%d", g)})
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got, want := trace.Len(), goroutines*intervals; got != want {
		t.Errorf("trace has %d entries after concurrent collection, want %d", got, want)
	}
	// Every goroutine's cumulative counters only grew, so interval deltas
	// must all equal the per-goroutine increment — proof no Record call
	// read a half-updated baseline.
	for _, e := range trace.Entries {
		var g int
		if _, err := fmt.Sscanf(e.Key.Job, "job-%d", &g); err != nil {
			t.Fatalf("unexpected job key %q", e.Key.Job)
		}
		if e.PromoTails[0] != uint64(g+1) {
			t.Fatalf("entry %s at t=%ds has promo delta %d, want %d",
				e.Key, e.TimestampSec, e.PromoTails[0], g+1)
		}
	}
}
