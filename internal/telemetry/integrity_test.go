package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func intactEntry(tr *Trace, ts int64) Entry {
	n := len(tr.Thresholds)
	e := Entry{
		Key:             JobKey{Cluster: "c", Machine: "m", Job: "j"},
		TimestampSec:    ts,
		IntervalMinutes: 5,
		WSSPages:        10,
		TotalPages:      100,
		ColdTails:       make([]uint64, n),
		PromoTails:      make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		e.ColdTails[i] = uint64(50 - i)
		e.PromoTails[i] = uint64(25 - i)
	}
	return e
}

func TestAppendStampsChecksum(t *testing.T) {
	tr := NewTrace()
	if err := tr.Append(intactEntry(tr, 300)); err != nil {
		t.Fatal(err)
	}
	e := tr.Entries[0]
	if e.Checksum == 0 {
		t.Fatal("append left checksum unset")
	}
	if err := e.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
	e.WSSPages++
	if err := e.VerifyChecksum(); err == nil {
		t.Error("mutated entry still verifies")
	}
}

func TestLoadTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	for i := int64(1); i <= 3; i++ {
		if err := tr.Append(intactEntry(tr, i*300)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip lost entries: %d vs %d", got.Len(), tr.Len())
	}
}

// TestLoadTraceRejectsCorruptedGob flips payload bits in a saved gob
// stream until decoding succeeds but validation must catch the damage.
func TestLoadTraceRejectsCorruptedGob(t *testing.T) {
	tr := NewTrace()
	for i := int64(1); i <= 5; i++ {
		if err := tr.Append(intactEntry(tr, i*300)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	caught := 0
	for off := len(raw) / 2; off < len(raw); off += 7 {
		dam := append([]byte(nil), raw...)
		dam[off] ^= 0xff
		if _, err := LoadTrace(bytes.NewReader(dam)); err != nil {
			caught++
		}
	}
	// Most single-byte flips must be rejected (either gob decode failure
	// or checksum/validation failure); none may silently load as valid.
	if caught == 0 {
		t.Fatal("no corrupted stream was rejected")
	}
	t.Logf("rejected %d corrupted streams", caught)
}

func TestLoadTraceRejectsTamperedEntry(t *testing.T) {
	// Decode-level corruption that gob itself cannot notice: a tampered
	// field with a stale checksum must fail validation on load.
	tr := NewTrace()
	if err := tr.Append(intactEntry(tr, 300)); err != nil {
		t.Fatal(err)
	}
	tr.Entries[0].WSSPages += 99 // checksum now stale
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := LoadTrace(&buf)
	if err == nil {
		t.Fatal("tampered entry loaded without error")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("error %q does not describe the corruption", err)
	}
}

func TestLoadTraceJSONValidates(t *testing.T) {
	tr := NewTrace()
	if err := tr.Append(intactEntry(tr, 300)); err != nil {
		t.Fatal(err)
	}
	good, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTraceJSON(bytes.NewReader(good)); err != nil {
		t.Fatalf("valid JSON trace rejected: %v", err)
	}

	// Tamper with a numeric field inside the JSON text.
	bad := bytes.Replace(good, []byte(`"WSSPages":10`), []byte(`"WSSPages":11`), 1)
	if bytes.Equal(bad, good) {
		t.Fatal("tamper target not found in JSON")
	}
	if _, err := LoadTraceJSON(bytes.NewReader(bad)); err == nil {
		t.Fatal("tampered JSON trace loaded without error")
	}

	// Truncated stream.
	if _, err := LoadTraceJSON(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated JSON trace loaded without error")
	}
}

func TestLoadTraceRejectsBadHeader(t *testing.T) {
	cases := []Trace{
		{ScanPeriodSeconds: 0, Thresholds: []int{1, 2}},
		{ScanPeriodSeconds: 120, Thresholds: nil},
		{ScanPeriodSeconds: 120, Thresholds: []int{2, 2}},
	}
	for i, tr := range cases {
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadTrace(&buf); err == nil {
			t.Errorf("case %d: malformed trace header accepted", i)
		}
	}
}

func TestScrubKeepsLegacyEntries(t *testing.T) {
	tr := NewTrace()
	for i := int64(1); i <= 4; i++ {
		if err := tr.Append(intactEntry(tr, i*300)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Entries[1].TotalPages++    // stale checksum: must go
	tr.Entries[2].Checksum = 0    // legacy unchecksummed: must stay
	tr.Entries[3].ColdTails = nil // structurally invalid: must go
	if dropped := tr.Scrub(); dropped != 2 {
		t.Fatalf("scrub dropped %d, want 2", dropped)
	}
	if tr.Len() != 2 {
		t.Fatalf("scrub left %d entries, want 2", tr.Len())
	}
}
