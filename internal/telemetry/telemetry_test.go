package telemetry

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"sdfm/internal/histogram"
)

func TestTailsAt(t *testing.T) {
	h := histogram.New(histogram.DefaultScanPeriod)
	h.Add(0, 100)
	h.Add(1, 50)
	h.Add(10, 25)
	h.Add(255, 5)
	tails := TailsAt(h, []int{0, 1, 10, 255})
	want := []uint64{180, 80, 30, 5}
	for i := range want {
		if tails[i] != want[i] {
			t.Errorf("tails[%d] = %d, want %d", i, tails[i], want[i])
		}
	}
}

func TestTailsAtBadThresholdPanics(t *testing.T) {
	h := histogram.New(histogram.DefaultScanPeriod)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range threshold did not panic")
		}
	}()
	TailsAt(h, []int{300})
}

func TestDefaultThresholdsSorted(t *testing.T) {
	for i := 1; i < len(DefaultThresholds); i++ {
		if DefaultThresholds[i] <= DefaultThresholds[i-1] {
			t.Fatalf("DefaultThresholds not strictly increasing at %d", i)
		}
	}
	if DefaultThresholds[0] != 1 {
		t.Error("first threshold must be 1 scan period (120 s)")
	}
	if DefaultThresholds[len(DefaultThresholds)-1] != 255 {
		t.Error("last threshold must be the saturating bucket")
	}
}

func validEntry(key JobKey, ts int64) Entry {
	n := len(DefaultThresholds)
	cold := make([]uint64, n)
	promo := make([]uint64, n)
	for i := range cold {
		cold[i] = uint64(n - i)
		promo[i] = uint64(2 * (n - i))
	}
	return Entry{
		Key: key, TimestampSec: ts, IntervalMinutes: 5,
		WSSPages: 100, TotalPages: 400,
		ColdTails: cold, PromoTails: promo,
	}
}

func TestTraceAppendValidates(t *testing.T) {
	tr := NewTrace()
	if err := tr.Append(validEntry(JobKey{"c", "m", "j"}, 300)); err != nil {
		t.Fatal(err)
	}
	bad := validEntry(JobKey{"c", "m", "j"}, 600)
	bad.ColdTails = bad.ColdTails[:2]
	if err := tr.Append(bad); err == nil {
		t.Error("short tails accepted")
	}
	bad2 := validEntry(JobKey{"c", "m", "j"}, 600)
	bad2.PromoTails[3] = bad2.PromoTails[2] + 1 // non-monotone
	if err := tr.Append(bad2); err == nil {
		t.Error("non-monotone tails accepted")
	}
	bad3 := validEntry(JobKey{"c", "m", "j"}, 600)
	bad3.IntervalMinutes = 0
	if err := tr.Append(bad3); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestJobSeriesSorted(t *testing.T) {
	tr := NewTrace()
	k1 := JobKey{"c1", "m1", "web"}
	k2 := JobKey{"c1", "m2", "batch"}
	tr.Append(validEntry(k1, 600))
	tr.Append(validEntry(k2, 300))
	tr.Append(validEntry(k1, 300))
	series := tr.JobSeries()
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	s1 := series[k1]
	if len(s1) != 2 || s1[0].TimestampSec != 300 || s1[1].TimestampSec != 600 {
		t.Errorf("k1 series not sorted: %v", s1)
	}
	jobs := tr.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("Jobs() = %v", jobs)
	}
	if jobs[0].String() >= jobs[1].String() {
		t.Error("Jobs() not sorted")
	}
}

func TestThresholdIndexFor(t *testing.T) {
	tr := NewTrace()
	if got := tr.ThresholdIndexFor(1); got != 0 {
		t.Errorf("index for bucket 1 = %d, want 0", got)
	}
	if got := tr.ThresholdIndexFor(7); tr.Thresholds[got] != 8 {
		t.Errorf("index for bucket 7 maps to threshold %d, want 8", tr.Thresholds[got])
	}
	if got := tr.ThresholdIndexFor(999); got != len(tr.Thresholds)-1 {
		t.Errorf("index for huge bucket = %d, want last", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.Append(validEntry(JobKey{"c", "m", "a"}, 300))
	tr.Append(validEntry(JobKey{"c", "m", "b"}, 300))
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.ScanPeriodSeconds != tr.ScanPeriodSeconds {
		t.Errorf("loaded trace: len=%d period=%d", got.Len(), got.ScanPeriodSeconds)
	}
	if got.Entries[0].Key != tr.Entries[0].Key {
		t.Error("entry key mismatch after round trip")
	}
	if got.Entries[0].WSSPages != 100 {
		t.Error("entry payload mismatch")
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveWritesVersionHeader(t *testing.T) {
	tr := NewTrace()
	tr.Append(validEntry(JobKey{"c", "m", "a"}, 300))
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if string(b[:7]) != "SDFMGOB" || b[7] != GobVersion {
		t.Fatalf("saved stream starts %q %d, want magic + version %d", b[:7], b[7], GobVersion)
	}
}

func TestLoadTraceRejectsUnknownVersion(t *testing.T) {
	tr := NewTrace()
	tr.Append(validEntry(JobKey{"c", "m", "a"}, 300))
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[7] = GobVersion + 1
	_, err := LoadTrace(bytes.NewReader(b))
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("future version error = %v, want ErrUnsupportedVersion", err)
	}
}

// TestLoadTraceLegacyHeaderless keeps traces saved before the format got
// its version header loadable: a bare gob stream must still decode.
func TestLoadTraceLegacyHeaderless(t *testing.T) {
	tr := NewTrace()
	tr.Append(validEntry(JobKey{"c", "m", "a"}, 300))
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	legacy := buf.Bytes()[8:] // strip magic + version: the pre-header encoding
	got, err := LoadTrace(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy headerless stream rejected: %v", err)
	}
	if got.Len() != 1 {
		t.Fatalf("legacy load got %d entries, want 1", got.Len())
	}
}

func TestCollectorDeltas(t *testing.T) {
	tr := NewTrace()
	c := NewCollector(tr)
	key := JobKey{"c", "m", "j"}

	promo := histogram.New(histogram.DefaultScanPeriod)
	census := histogram.New(histogram.DefaultScanPeriod)
	census.Add(0, 70)
	census.Add(5, 30)

	// Interval 1: 10 cumulative promotions at age 5.
	promo.Add(5, 10)
	if err := c.Record(key, 5*time.Minute, 5, promo, census, 70); err != nil {
		t.Fatal(err)
	}
	// Interval 2: 4 more promotions (cumulative 14).
	promo.Add(5, 4)
	if err := c.Record(key, 10*time.Minute, 5, promo, census, 70); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("trace len = %d", tr.Len())
	}
	// First entry carries the full cumulative count (job start), second
	// only the delta.
	i5 := tr.ThresholdIndexFor(5)
	if got := tr.Entries[0].PromoTails[i5]; got != 10 {
		t.Errorf("interval 1 promos = %d, want 10", got)
	}
	if got := tr.Entries[1].PromoTails[i5]; got != 4 {
		t.Errorf("interval 2 promos = %d, want 4", got)
	}
	if tr.Entries[1].TotalPages != 100 {
		t.Errorf("TotalPages = %d", tr.Entries[1].TotalPages)
	}
}

func TestCollectorForget(t *testing.T) {
	tr := NewTrace()
	c := NewCollector(tr)
	key := JobKey{"c", "m", "j"}
	promo := histogram.New(histogram.DefaultScanPeriod)
	census := histogram.New(histogram.DefaultScanPeriod)
	census.Add(0, 10)
	promo.Add(5, 10)
	c.Record(key, 5*time.Minute, 5, promo, census, 10)
	c.Forget(key)
	// After Forget, a fresh (restarted) job's lower cumulative counter
	// must not trip the backwards check.
	promo2 := histogram.New(histogram.DefaultScanPeriod)
	promo2.Add(5, 2)
	if err := c.Record(key, 10*time.Minute, 5, promo2, census, 10); err != nil {
		t.Fatalf("Record after Forget: %v", err)
	}
}

func TestJobKeyString(t *testing.T) {
	k := JobKey{"cluster-a", "m01", "bigtable"}
	if k.String() != "cluster-a/m01/bigtable" {
		t.Errorf("String = %q", k.String())
	}
}

// TestCollectorCounterResetRebaseline is the regression test for the
// half-updated-baseline bug: a cumulative promotion histogram that jumps
// backwards at a *later* threshold index while earlier indices still move
// forward used to be rejected mid-update, leaving prevPromo with a mix of
// old and new values and silently corrupting the next interval's deltas.
// A backwards counter now means "daemon restarted": the whole baseline is
// re-based atomically and the current cumulative tails become the deltas.
func TestCollectorCounterResetRebaseline(t *testing.T) {
	tr := NewTrace()
	c := NewCollector(tr)
	key := JobKey{"c", "m", "j"}
	census := histogram.New(histogram.DefaultScanPeriod)
	census.Add(0, 10)

	// Interval 1: 10 cumulative promotions at age 5. Baseline tails are 10
	// for every threshold index covering age 5 and 0 beyond.
	promo := histogram.New(histogram.DefaultScanPeriod)
	promo.Add(5, 10)
	if err := c.Record(key, 5*time.Minute, 5, promo, census, 10); err != nil {
		t.Fatal(err)
	}

	// Daemon restart: counters rebase to zero, then 12 promotions land at
	// age 2. The new cumulative tails are 12 at indices covering age 2 but
	// 0 at the index for age 3 — *ahead* of the baseline at early indices,
	// *behind* it at later ones, the exact shape that used to half-update.
	promo = histogram.New(histogram.DefaultScanPeriod)
	promo.Add(2, 12)
	if err := c.Record(key, 10*time.Minute, 5, promo, census, 10); err != nil {
		t.Fatalf("Record on counter reset: %v", err)
	}
	if got := c.Resets(); got != 1 {
		t.Errorf("Resets = %d, want 1", got)
	}

	// Interval 3: 3 more promotions at age 2 (cumulative 15 since restart).
	promo.Add(2, 3)
	if err := c.Record(key, 15*time.Minute, 5, promo, census, 10); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("trace len = %d", tr.Len())
	}

	i2 := tr.ThresholdIndexFor(2)
	i3 := tr.ThresholdIndexFor(3)
	// The restart interval reports the promotions since the restart.
	if got := tr.Entries[1].PromoTails[i2]; got != 12 {
		t.Errorf("restart interval promos@2 = %d, want 12", got)
	}
	// The interval after the restart must see a clean baseline: exactly
	// the 3 new promotions, at every index — not deltas against a mix of
	// pre- and post-restart values.
	if got := tr.Entries[2].PromoTails[i2]; got != 3 {
		t.Errorf("post-restart interval promos@2 = %d, want 3", got)
	}
	if got := tr.Entries[2].PromoTails[i3]; got != 0 {
		t.Errorf("post-restart interval promos@3 = %d, want 0", got)
	}
}

// TestCollectorNoResetOnMonotonicCounters makes sure ordinary growth never
// trips the restart heuristic.
func TestCollectorNoResetOnMonotonicCounters(t *testing.T) {
	tr := NewTrace()
	c := NewCollector(tr)
	key := JobKey{"c", "m", "j"}
	census := histogram.New(histogram.DefaultScanPeriod)
	census.Add(0, 10)
	promo := histogram.New(histogram.DefaultScanPeriod)
	for i := 0; i < 5; i++ {
		promo.Add(4, 7)
		if err := c.Record(key, time.Duration(i+1)*5*time.Minute, 5, promo, census, 10); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Resets(); got != 0 {
		t.Errorf("Resets = %d, want 0", got)
	}
	i4 := tr.ThresholdIndexFor(4)
	for i := 1; i < 5; i++ {
		if got := tr.Entries[i].PromoTails[i4]; got != 7 {
			t.Errorf("interval %d promos = %d, want 7", i, got)
		}
	}
}
